// Package gen generates the matrix/bipartite-graph workloads used by the
// experiments. It covers the three synthetic classes defined in the paper —
// the Fig. 2 "bad for Karp–Sipser" family, Erdős–Rényi sprand matrices and
// the all-ones matrix of the 1-out conjecture — plus structural analogs for
// the twelve SuiteSparse instances of Table 3 (grids, road-like meshes,
// power-law/skewed matrices, banded matrices and KKT saddle-point
// patterns), which cannot be shipped with an offline reproduction.
//
// All generators are deterministic for a fixed seed and produce validated
// pattern matrices with sorted, duplicate-free rows.
package gen

import (
	"math"

	"repro/internal/sparse"
	"repro/internal/xrand"
)

// Full returns the n×n all-ones matrix. Its scaled form is s_ij = 1/n and
// the 1-out graph drawn from it is the random 1-out bipartite graph of
// Walkup used in Conjecture 1.
func Full(n int) *sparse.CSR {
	a := &sparse.CSR{RowsN: n, ColsN: n}
	a.Ptr = make([]int, n+1)
	a.Idx = make([]int32, n*n)
	for i := 0; i < n; i++ {
		a.Ptr[i+1] = (i + 1) * n
		for j := 0; j < n; j++ {
			a.Idx[i*n+j] = int32(j)
		}
	}
	return a
}

// Identity returns the n×n identity pattern.
func Identity(n int) *sparse.CSR {
	a := &sparse.CSR{RowsN: n, ColsN: n}
	a.Ptr = make([]int, n+1)
	a.Idx = make([]int32, n)
	for i := 0; i < n; i++ {
		a.Ptr[i+1] = i + 1
		a.Idx[i] = int32(i)
	}
	return a
}

// ER returns an Erdős–Rényi pattern with rows×cols shape and approximately
// nnz nonzeros placed uniformly at random (duplicates are removed, like
// Matlab's sprand used in the paper's §4.1.3).
func ER(rows, cols, nnz int, seed uint64) *sparse.CSR {
	rng := xrand.New(seed)
	entries := make([]sparse.Coord, 0, nnz)
	for k := 0; k < nnz; k++ {
		entries = append(entries, sparse.Coord{
			I: int32(rng.Intn(rows)),
			J: int32(rng.Intn(cols)),
		})
	}
	a, err := sparse.FromCOO(rows, cols, entries, false)
	if err != nil {
		panic("gen: ER produced invalid matrix: " + err.Error())
	}
	return a
}

// ERAvgDeg returns an Erdős–Rényi pattern with average row degree d, the
// parameterization used by Table 2 (d ∈ {2,3,4,5}).
func ERAvgDeg(rows, cols int, d float64, seed uint64) *sparse.CSR {
	return ER(rows, cols, int(math.Round(d*float64(rows))), seed)
}

// BadKS constructs the Fig. 2 family that defeats the classic Karp–Sipser
// heuristic. n must be even and k <= n/2. Layout (h = n/2):
//
//   - the R1×C1 block (rows 0..h-1 × cols 0..h-1) is full;
//   - the last k rows of R1 and last k columns of C1 are entirely full;
//   - R1×C2 and R2×C1 carry nonzero diagonals, which together form a
//     perfect matching;
//   - R2×C2 is empty.
//
// For k > 1 the graph has no degree-one vertex, so Karp–Sipser immediately
// enters its random phase and is drawn into the full R1×C1 block, whose
// entries can never be in a perfect matching.
func BadKS(n, k int) *sparse.CSR {
	if n%2 != 0 {
		panic("gen: BadKS needs even n")
	}
	h := n / 2
	if k > h {
		panic("gen: BadKS needs k <= n/2")
	}
	est := h*h + 2*k*n + 2*h
	entries := make([]sparse.Coord, 0, est)
	for i := 0; i < h; i++ {
		for j := 0; j < h; j++ {
			entries = append(entries, sparse.Coord{I: int32(i), J: int32(j)})
		}
	}
	for i := h - k; i < h; i++ { // last k rows of R1 are full
		for j := 0; j < n; j++ {
			entries = append(entries, sparse.Coord{I: int32(i), J: int32(j)})
		}
	}
	for j := h - k; j < h; j++ { // last k columns of C1 are full
		for i := 0; i < n; i++ {
			entries = append(entries, sparse.Coord{I: int32(i), J: int32(j)})
		}
	}
	for i := 0; i < h; i++ { // R1×C2 diagonal
		entries = append(entries, sparse.Coord{I: int32(i), J: int32(h + i)})
	}
	for i := 0; i < h; i++ { // R2×C1 diagonal
		entries = append(entries, sparse.Coord{I: int32(h + i), J: int32(i)})
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic("gen: BadKS produced invalid matrix: " + err.Error())
	}
	return a
}

// Grid2D returns the 5-point stencil pattern of an nx×ny grid (the matrix
// of a 2D Laplacian): symmetric, average degree just under 5, full sprank.
// Analog class for venturiLevel3/hugebubbles-style meshes.
func Grid2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	entries := make([]sparse.Coord, 0, 5*n)
	id := func(x, y int) int32 { return int32(x*ny + y) }
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			v := id(x, y)
			entries = append(entries, sparse.Coord{I: v, J: v})
			if x > 0 {
				entries = append(entries, sparse.Coord{I: v, J: id(x-1, y)})
			}
			if x < nx-1 {
				entries = append(entries, sparse.Coord{I: v, J: id(x+1, y)})
			}
			if y > 0 {
				entries = append(entries, sparse.Coord{I: v, J: id(x, y-1)})
			}
			if y < ny-1 {
				entries = append(entries, sparse.Coord{I: v, J: id(x, y+1)})
			}
		}
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic("gen: Grid2D produced invalid matrix: " + err.Error())
	}
	return a
}

// Grid3D returns the stencil pattern of an nx×ny×nz grid. With full27 the
// stencil is the dense 3×3×3 neighborhood (average degree ≈ 27, an analog
// for nlpkkt240/channel-class matrices); otherwise the 7-point stencil
// (atmosmodl-class).
func Grid3D(nx, ny, nz int, full27 bool) *sparse.CSR {
	n := nx * ny * nz
	cap := 7 * n
	if full27 {
		cap = 27 * n
	}
	entries := make([]sparse.Coord, 0, cap)
	id := func(x, y, z int) int32 { return int32((x*ny+y)*nz + z) }
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				v := id(x, y, z)
				if full27 {
					for dx := -1; dx <= 1; dx++ {
						for dy := -1; dy <= 1; dy++ {
							for dz := -1; dz <= 1; dz++ {
								xx, yy, zz := x+dx, y+dy, z+dz
								if xx >= 0 && xx < nx && yy >= 0 && yy < ny && zz >= 0 && zz < nz {
									entries = append(entries, sparse.Coord{I: v, J: id(xx, yy, zz)})
								}
							}
						}
					}
					continue
				}
				entries = append(entries, sparse.Coord{I: v, J: v})
				if x > 0 {
					entries = append(entries, sparse.Coord{I: v, J: id(x-1, y, z)})
				}
				if x < nx-1 {
					entries = append(entries, sparse.Coord{I: v, J: id(x+1, y, z)})
				}
				if y > 0 {
					entries = append(entries, sparse.Coord{I: v, J: id(x, y-1, z)})
				}
				if y < ny-1 {
					entries = append(entries, sparse.Coord{I: v, J: id(x, y+1, z)})
				}
				if z > 0 {
					entries = append(entries, sparse.Coord{I: v, J: id(x, y, z-1)})
				}
				if z < nz-1 {
					entries = append(entries, sparse.Coord{I: v, J: id(x, y, z+1)})
				}
			}
		}
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic("gen: Grid3D produced invalid matrix: " + err.Error())
	}
	return a
}

// KOut returns Walkup's random k-out bipartite graph: every row chooses k
// distinct random columns and every column chooses k distinct random rows;
// the union of the choices is the edge set. Walkup (1980) proved that
// 1-out graphs have maximum matchings of ≈ 0.866n (the constant behind
// Conjecture 1) while 2-out graphs have perfect matchings almost surely.
func KOut(n, k int, seed uint64) *sparse.CSR {
	rng := xrand.New(seed)
	entries := make([]sparse.Coord, 0, 2*k*n)
	pick := func() []int32 {
		if k >= n {
			all := make([]int32, n)
			for i := range all {
				all[i] = int32(i)
			}
			return all
		}
		seen := make(map[int32]bool, k)
		out := make([]int32, 0, k)
		for len(out) < k {
			v := int32(rng.Intn(n))
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		for _, j := range pick() {
			entries = append(entries, sparse.Coord{I: int32(i), J: j})
		}
	}
	for j := 0; j < n; j++ {
		for _, i := range pick() {
			entries = append(entries, sparse.Coord{I: i, J: int32(j)})
		}
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic("gen: KOut produced invalid matrix: " + err.Error())
	}
	return a
}

// Mesh2D returns the adjacency pattern of an nx×ny grid graph without
// self loops: average degree just under 4, symmetric, and with a perfect
// matching when nx*ny is even (venturiLevel3/hugebubbles-class meshes).
func Mesh2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	entries := make([]sparse.Coord, 0, 4*n)
	id := func(x, y int) int32 { return int32(x*ny + y) }
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			v := id(x, y)
			if x > 0 {
				entries = append(entries, sparse.Coord{I: v, J: id(x-1, y)})
			}
			if x < nx-1 {
				entries = append(entries, sparse.Coord{I: v, J: id(x+1, y)})
			}
			if y > 0 {
				entries = append(entries, sparse.Coord{I: v, J: id(x, y-1)})
			}
			if y < ny-1 {
				entries = append(entries, sparse.Coord{I: v, J: id(x, y+1)})
			}
		}
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic("gen: Mesh2D produced invalid matrix: " + err.Error())
	}
	return a
}

// RoadLike returns the symmetric adjacency pattern of a thinned 2D grid
// graph with average degree avgDeg (≈2.1 for a europe_osm analog, ≈2.4 for
// road_usa). Thinning leaves isolated vertices and odd components, so the
// pattern is slightly sprank-deficient exactly like the road networks in
// Table 3. No self loops.
func RoadLike(n int, avgDeg float64, seed uint64) *sparse.CSR {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	nn := side * side
	rng := xrand.New(seed)
	p := avgDeg / 4.0 // interior grid vertices have 4 incident edges
	if p > 1 {
		p = 1
	}
	entries := make([]sparse.Coord, 0, int(avgDeg*float64(nn))+16)
	id := func(x, y int) int32 { return int32(x*side + y) }
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			v := id(x, y)
			if x < side-1 && rng.Float64() < p {
				u := id(x+1, y)
				entries = append(entries, sparse.Coord{I: v, J: u}, sparse.Coord{I: u, J: v})
			}
			if y < side-1 && rng.Float64() < p {
				u := id(x, y+1)
				entries = append(entries, sparse.Coord{I: v, J: u}, sparse.Coord{I: u, J: v})
			}
		}
	}
	a, err := sparse.FromCOO(nn, nn, entries, false)
	if err != nil {
		panic("gen: RoadLike produced invalid matrix: " + err.Error())
	}
	return a
}

// PowerLaw returns an n×n pattern whose row degrees follow a clipped
// Pareto(dmin, alpha) distribution with uniformly random column targets,
// plus the diagonal (so the matrix has support). Small alpha gives the
// extreme degree variance of torso1; larger alpha the milder skew of
// audikw_1.
func PowerLaw(n int, dmin float64, alpha float64, maxDeg int, seed uint64) *sparse.CSR {
	rng := xrand.New(seed)
	if maxDeg <= 0 || maxDeg > n {
		maxDeg = n
	}
	entries := make([]sparse.Coord, 0, n*int(dmin+2))
	for i := 0; i < n; i++ {
		deg := int(rng.Pareto(dmin, alpha))
		if deg > maxDeg {
			deg = maxDeg
		}
		if deg < 1 {
			deg = 1
		}
		entries = append(entries, sparse.Coord{I: int32(i), J: int32(i)})
		for k := 0; k < deg; k++ {
			entries = append(entries, sparse.Coord{I: int32(i), J: int32(rng.Intn(n))})
		}
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic("gen: PowerLaw produced invalid matrix: " + err.Error())
	}
	return a
}

// Band returns an n×n banded pattern with the given diagonal offsets
// (offset 0 is the main diagonal). A Hamrle3-class analog is
// Band(n, 0, -1, 1, -w, w) for some wide w.
func Band(n int, offsets ...int) *sparse.CSR {
	entries := make([]sparse.Coord, 0, n*len(offsets))
	for _, off := range offsets {
		for i := 0; i < n; i++ {
			j := i + off
			if j >= 0 && j < n {
				entries = append(entries, sparse.Coord{I: int32(i), J: int32(j)})
			}
		}
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic("gen: Band produced invalid matrix: " + err.Error())
	}
	return a
}

// FullyIndecomposable returns an n×n matrix with total support: the
// identity plus the cyclic shift (whose union is a single alternating
// Hamiltonian structure, hence fully indecomposable) plus `extras` random
// entries per row to vary the density. It is the workload standing in for
// the paper's 743 fully indecomposable SuiteSparse matrices (§4.1.1).
//
// The random extras are not guaranteed to lie on a perfect matching, so
// total support can be mildly violated by them; Sinkhorn–Knopp then drives
// exactly those entries toward zero, which is the behaviour §3.3 describes.
func FullyIndecomposable(n, extras int, seed uint64) *sparse.CSR {
	rng := xrand.New(seed)
	entries := make([]sparse.Coord, 0, n*(2+extras))
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{I: int32(i), J: int32(i)})
		entries = append(entries, sparse.Coord{I: int32(i), J: int32((i + 1) % n)})
		for k := 0; k < extras; k++ {
			entries = append(entries, sparse.Coord{I: int32(i), J: int32(rng.Intn(n))})
		}
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic("gen: FullyIndecomposable produced invalid matrix: " + err.Error())
	}
	return a
}

// KKTLike returns the symmetric saddle-point pattern
//
//	[ A  B ]
//	[ Bᵀ 0 ]
//
// with A an nA×nA banded+random sparse block and B an nA×nB sparse coupling
// block — the structure of kkt_power in Table 3.
func KKTLike(nA, nB int, extra int, seed uint64) *sparse.CSR {
	rng := xrand.New(seed)
	n := nA + nB
	entries := make([]sparse.Coord, 0, nA*(3+extra)+4*nB)
	for i := 0; i < nA; i++ {
		entries = append(entries, sparse.Coord{I: int32(i), J: int32(i)})
		if i+1 < nA {
			entries = append(entries, sparse.Coord{I: int32(i), J: int32(i + 1)})
			entries = append(entries, sparse.Coord{I: int32(i + 1), J: int32(i)})
		}
		for k := 0; k < extra; k++ {
			j := rng.Intn(nA)
			entries = append(entries, sparse.Coord{I: int32(i), J: int32(j)})
			entries = append(entries, sparse.Coord{I: int32(j), J: int32(i)})
		}
	}
	for j := 0; j < nB; j++ {
		// each constraint couples to a couple of primal variables
		deg := 1 + rng.Intn(3)
		for k := 0; k < deg; k++ {
			i := rng.Intn(nA)
			entries = append(entries, sparse.Coord{I: int32(i), J: int32(nA + j)})
			entries = append(entries, sparse.Coord{I: int32(nA + j), J: int32(i)})
		}
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic("gen: KKTLike produced invalid matrix: " + err.Error())
	}
	return a
}

// RankDeficient returns an n×n pattern whose nonzeros all fall in the
// first n−def columns, so sprank(A) ≤ n−def and at least def rows stay
// unmatched in every maximum matching. With avgDeg well above 1 the
// deficiency is exactly def w.h.p., which makes the family the standard
// stress test for exact refinement: every heuristic leaves many exposed
// rows whose augmenting searches jointly sweep most of the graph before
// proving them unmatchable.
func RankDeficient(n, def int, avgDeg float64, seed uint64) *sparse.CSR {
	if def < 0 || def >= n {
		panic("gen: RankDeficient needs 0 <= def < n")
	}
	rng := xrand.New(seed)
	cols := n - def
	entries := make([]sparse.Coord, 0, int(float64(n)*avgDeg))
	for i := 0; i < n; i++ {
		d := 1 + rng.Intn(int(2*avgDeg))
		for k := 0; k < d; k++ {
			entries = append(entries, sparse.Coord{I: int32(i), J: int32(rng.Intn(cols))})
		}
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic("gen: RankDeficient produced invalid matrix: " + err.Error())
	}
	return a
}

// LongThinPath returns the n×n two-diagonal pattern (row i ~ cols i and
// i+1): the whole graph is one alternating chain, so a warm start that
// matches rows off-diagonal forces augmenting paths of length Θ(n) — the
// worst case for search engines that pay per path rather than per phase.
func LongThinPath(n int) *sparse.CSR {
	entries := make([]sparse.Coord, 0, 2*n)
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{I: int32(i), J: int32(i)})
		if i+1 < n {
			entries = append(entries, sparse.Coord{I: int32(i), J: int32(i + 1)})
		}
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic("gen: LongThinPath produced invalid matrix: " + err.Error())
	}
	return a
}

// SkewedDegree returns a rows×cols pattern with skewed degree mass on
// both sides: column picks concentrate on the low indices (u^skew
// mapping, so column j's expected degree falls off polynomially) and a
// small head of hub rows carries a large share of the edges. It is the
// load-imbalance adversary for parallel matching kernels — a few frontier
// vertices hold most of the work.
func SkewedDegree(rows, cols int, avgDeg, skew float64, seed uint64) *sparse.CSR {
	rng := xrand.New(seed)
	entries := make([]sparse.Coord, 0, int(float64(rows)*avgDeg))
	hubs := rows / 64
	if hubs < 1 {
		hubs = 1
	}
	for i := 0; i < rows; i++ {
		d := 1 + rng.Intn(int(2*avgDeg))
		if i < hubs {
			d = 16 * int(avgDeg)
			if d > cols {
				d = cols
			}
		}
		for k := 0; k < d; k++ {
			j := int(math.Pow(rng.Float64Open(), skew) * float64(cols))
			if j >= cols {
				j = cols - 1
			}
			entries = append(entries, sparse.Coord{I: int32(i), J: int32(j)})
		}
	}
	a, err := sparse.FromCOO(rows, cols, entries, false)
	if err != nil {
		panic("gen: SkewedDegree produced invalid matrix: " + err.Error())
	}
	return a
}
