// Package cheap implements the two "cheap matching" heuristics reviewed in
// the paper's §2.1. Both have a 1/2 worst-case approximation guarantee and
// serve as the simplest baselines against which the scaled heuristics are
// compared.
package cheap

import (
	"repro/internal/exact"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// RandomEdge visits the edges in a uniformly random order and matches the
// two endpoints of an edge when both are still free (the first §2.1
// variant, analyzed by Dyer and Frieze).
func RandomEdge(a *sparse.CSR, seed uint64) *exact.Matching {
	n, m := a.RowsN, a.ColsN
	mt := exact.NewMatching(n, m)
	rng := xrand.New(seed)
	order := rng.Perm(a.NNZ())
	// Map flat edge position back to its row with a linear sweep index.
	rowOf := make([]int32, a.NNZ())
	for i := 0; i < n; i++ {
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			rowOf[p] = int32(i)
		}
	}
	for _, p := range order {
		i := rowOf[p]
		j := a.Idx[p]
		if mt.RowMate[i] == exact.NIL && mt.ColMate[j] == exact.NIL {
			mt.RowMate[i] = j
			mt.ColMate[j] = i
			mt.Size++
		}
	}
	return mt
}

// RandomVertex repeatedly selects a random free row and matches it with a
// random free neighbor (the second §2.1 variant, with the Pothen–Fan 1/2
// guarantee and the Aronson/Dyer/Frieze/Suen 0.5+ε analysis for random
// order). Rows with no free neighbor are skipped.
func RandomVertex(a *sparse.CSR, seed uint64) *exact.Matching {
	n, m := a.RowsN, a.ColsN
	mt := exact.NewMatching(n, m)
	rng := xrand.New(seed)
	order := rng.Perm(n)
	free := make([]int32, 0, 8)
	for _, i := range order {
		if mt.RowMate[i] != exact.NIL {
			continue
		}
		free = free[:0]
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			if mt.ColMate[a.Idx[p]] == exact.NIL {
				free = append(free, a.Idx[p])
			}
		}
		if len(free) == 0 {
			continue
		}
		j := free[rng.Intn(len(free))]
		mt.RowMate[i] = j
		mt.ColMate[j] = i
		mt.Size++
	}
	return mt
}
