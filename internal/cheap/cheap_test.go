package cheap

import (
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/sparse"
)

func validate(t *testing.T, a *sparse.CSR, mt *exact.Matching) {
	t.Helper()
	size := 0
	for i, j := range mt.RowMate {
		if j == exact.NIL {
			continue
		}
		size++
		if mt.ColMate[j] != int32(i) {
			t.Fatalf("inconsistent mates row %d col %d", i, j)
		}
		ok := false
		for _, c := range a.Row(i) {
			if c == j {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("matched non-edge (%d,%d)", i, j)
		}
	}
	if size != mt.Size {
		t.Fatalf("size %d vs %d matched", mt.Size, size)
	}
}

func maximal(a *sparse.CSR, mt *exact.Matching) bool {
	for i := 0; i < a.RowsN; i++ {
		if mt.RowMate[i] != exact.NIL {
			continue
		}
		for _, j := range a.Row(i) {
			if mt.ColMate[j] == exact.NIL {
				return false
			}
		}
	}
	return true
}

func TestRandomEdgeValidAndMaximal(t *testing.T) {
	f := func(seed uint64, d uint8) bool {
		a := gen.ERAvgDeg(150, 150, float64(d%4)+1, seed)
		mt := RandomEdge(a, seed+1)
		return maximal(a, mt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	a := gen.ERAvgDeg(200, 200, 3, 7)
	validate(t, a, RandomEdge(a, 3))
}

func TestRandomVertexValidAndMaximal(t *testing.T) {
	f := func(seed uint64, d uint8) bool {
		a := gen.ERAvgDeg(150, 150, float64(d%4)+1, seed)
		mt := RandomVertex(a, seed+1)
		return maximal(a, mt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	a := gen.ERAvgDeg(200, 200, 3, 7)
	validate(t, a, RandomVertex(a, 3))
}

func TestHalfApproximationGuarantee(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		a := gen.ERAvgDeg(250, 250, 3, seed)
		sp := exact.Sprank(a)
		if m := RandomEdge(a, seed); 2*m.Size < sp {
			t.Fatalf("RandomEdge %d below half of %d", m.Size, sp)
		}
		if m := RandomVertex(a, seed); 2*m.Size < sp {
			t.Fatalf("RandomVertex %d below half of %d", m.Size, sp)
		}
	}
}

func TestPerfectOnIdentity(t *testing.T) {
	a := gen.Identity(64)
	if m := RandomEdge(a, 1); m.Size != 64 {
		t.Fatalf("RandomEdge on identity: %d", m.Size)
	}
	if m := RandomVertex(a, 1); m.Size != 64 {
		t.Fatalf("RandomVertex on identity: %d", m.Size)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a := gen.ERAvgDeg(300, 300, 4, 9)
	m1 := RandomEdge(a, 5)
	m2 := RandomEdge(a, 5)
	for i := range m1.RowMate {
		if m1.RowMate[i] != m2.RowMate[i] {
			t.Fatal("RandomEdge not deterministic")
		}
	}
	v1 := RandomVertex(a, 5)
	v2 := RandomVertex(a, 5)
	for i := range v1.RowMate {
		if v1.RowMate[i] != v2.RowMate[i] {
			t.Fatal("RandomVertex not deterministic")
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	a, _ := sparse.FromCOO(5, 5, nil, false)
	if RandomEdge(a, 1).Size != 0 || RandomVertex(a, 1).Size != 0 {
		t.Fatal("empty graph produced matches")
	}
}
