package ks

import (
	"sync/atomic"

	"repro/internal/buf"
	"repro/internal/exact"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// RunApprox is an Azad-et-al-style multithreaded Karp–Sipser for general
// bipartite graphs (the paper's reference [4]): a parallel degree-one pass
// followed by a parallel random-vertex pass, synchronized only by
// compare-and-swap claims. Unlike the exact sequential Run it does not
// maintain a global degree-one list, so it misses some optimal decisions —
// it is "successful but without any known quality guarantee", which is
// precisely the gap the paper's TwoSidedMatch + KarpSipserMT combination
// closes. It is provided as the parallel baseline for comparisons.
func RunApprox(a, at *sparse.CSR, seed uint64, workers int) *exact.Matching {
	return RunApproxPool(a, at, seed, workers, nil)
}

// RunApproxPool is RunApprox dispatching its passes to the given worker
// pool (nil means par.Default), so one resident pool serves scaling,
// sampling and this baseline alike.
func RunApproxPool(a, at *sparse.CSR, seed uint64, workers int, pool *par.Pool) *exact.Matching {
	if pool == nil {
		pool = par.Default()
	}
	s := NewApproxSession(a, at, workers, pool)
	return s.Run(seed)
}

// tryMatchApprox is the claim protocol of the approximate parallel
// Karp–Sipser: CAS the column first, then publish the row side.
func tryMatchApprox(rowMate, colMate []int32, i, j int32) bool {
	if atomic.LoadInt32(&rowMate[i]) != exact.NIL {
		return false
	}
	if !atomic.CompareAndSwapInt32(&colMate[j], exact.NIL, i) {
		return false
	}
	if !atomic.CompareAndSwapInt32(&rowMate[i], exact.NIL, j) {
		// The row was taken concurrently; release the column.
		atomic.StoreInt32(&colMate[j], exact.NIL)
		return false
	}
	return true
}

// approxDeg1RowsRange applies the degree-one rule to rows [lo, hi) — only
// vertices that are degree-one in the *input* are handled (newly arising
// degree-one vertices are missed; that is the approximation).
func approxDeg1RowsRange(a *sparse.CSR, rowMate, colMate []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		if a.Degree(i) == 1 {
			tryMatchApprox(rowMate, colMate, int32(i), a.Idx[a.Ptr[i]])
		}
	}
}

// approxDeg1ColsRange is the column-side degree-one pass.
func approxDeg1ColsRange(at *sparse.CSR, rowMate, colMate []int32, lo, hi int) {
	for j := lo; j < hi; j++ {
		if at.Degree(j) == 1 {
			tryMatchApprox(rowMate, colMate, at.Idx[at.Ptr[j]], int32(j))
		}
	}
}

// approxRandRange is the random-order greedy pass over rows [lo, hi):
// each free row claims a random free neighbor (retrying over its
// adjacency once).
func approxRandRange(a *sparse.CSR, rowMate, colMate []int32, base uint64, lo, hi int) {
	var rng xrand.SplitMix64
	for i := lo; i < hi; i++ {
		if atomic.LoadInt32(&rowMate[i]) != exact.NIL {
			continue
		}
		deg := a.Degree(i)
		if deg == 0 {
			continue
		}
		rng.SetIndexed(base, i)
		off := rng.Intn(deg)
		for k := 0; k < deg; k++ {
			j := a.Idx[a.Ptr[i]+(off+k)%deg]
			if atomic.LoadInt32(&colMate[j]) == exact.NIL && tryMatchApprox(rowMate, colMate, int32(i), j) {
				break
			}
		}
	}
}

// ApproxSession is the reusable-workspace form of RunApprox: it is bound
// to one graph, owns the matching buffers and the prebuilt pass bodies,
// and serves repeated Run calls without steady-state allocations. The
// returned matching aliases the session and is valid until the next Run
// (or Rebind). Not safe for concurrent use.
type ApproxSession struct {
	a, at   *sparse.CSR
	pool    *par.Pool
	workers int
	mt      exact.Matching
	base    uint64

	deg1Rows func(w, lo, hi int)
	deg1Cols func(w, lo, hi int)
	randPass func(w, lo, hi int)
}

// NewApproxSession binds a session to the graph (a, at) running on the
// given pool (nil means par.Default) with the given worker count.
func NewApproxSession(a, at *sparse.CSR, workers int, pool *par.Pool) *ApproxSession {
	if pool == nil {
		pool = par.Default()
	}
	s := &ApproxSession{pool: pool, workers: workers}
	s.deg1Rows = func(_, lo, hi int) {
		approxDeg1RowsRange(s.a, s.mt.RowMate, s.mt.ColMate, lo, hi)
	}
	s.deg1Cols = func(_, lo, hi int) {
		approxDeg1ColsRange(s.at, s.mt.RowMate, s.mt.ColMate, lo, hi)
	}
	s.randPass = func(_, lo, hi int) {
		approxRandRange(s.a, s.mt.RowMate, s.mt.ColMate, s.base, lo, hi)
	}
	s.Rebind(a, at)
	return s
}

// Rebind points the session at a different graph, growing the matching
// buffers as needed.
func (s *ApproxSession) Rebind(a, at *sparse.CSR) {
	s.a, s.at = a, at
	s.mt.RowMate = buf.Grow(s.mt.RowMate, a.RowsN)
	s.mt.ColMate = buf.Grow(s.mt.ColMate, a.ColsN)
	s.mt.Size = 0
}

// Run executes the two passes with the given seed and returns the
// session-owned matching.
func (s *ApproxSession) Run(seed uint64) *exact.Matching {
	for i := range s.mt.RowMate {
		s.mt.RowMate[i] = exact.NIL
	}
	for j := range s.mt.ColMate {
		s.mt.ColMate[j] = exact.NIL
	}
	s.base = xrand.Base(seed)
	n, m := s.a.RowsN, s.a.ColsN
	s.pool.For(n, s.workers, par.Dynamic, par.DefaultChunk, s.deg1Rows)
	s.pool.For(m, s.workers, par.Dynamic, par.DefaultChunk, s.deg1Cols)
	s.pool.For(n, s.workers, par.Dynamic, par.DefaultChunk, s.randPass)

	size := 0
	for i := 0; i < n; i++ {
		if s.mt.RowMate[i] != exact.NIL {
			size++
		}
	}
	s.mt.Size = size
	return &s.mt
}
