package ks

import (
	"sync/atomic"

	"repro/internal/exact"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// RunApprox is an Azad-et-al-style multithreaded Karp–Sipser for general
// bipartite graphs (the paper's reference [4]): a parallel degree-one pass
// followed by a parallel random-vertex pass, synchronized only by
// compare-and-swap claims. Unlike the exact sequential Run it does not
// maintain a global degree-one list, so it misses some optimal decisions —
// it is "successful but without any known quality guarantee", which is
// precisely the gap the paper's TwoSidedMatch + KarpSipserMT combination
// closes. It is provided as the parallel baseline for comparisons.
func RunApprox(a, at *sparse.CSR, seed uint64, workers int) *exact.Matching {
	return RunApproxPool(a, at, seed, workers, nil)
}

// RunApproxPool is RunApprox dispatching its passes to the given worker
// pool (nil means par.Default), so one resident pool serves scaling,
// sampling and this baseline alike.
func RunApproxPool(a, at *sparse.CSR, seed uint64, workers int, pool *par.Pool) *exact.Matching {
	if pool == nil {
		pool = par.Default()
	}
	n, m := a.RowsN, a.ColsN
	mt := exact.NewMatching(n, m)
	rowMate := mt.RowMate
	colMate := mt.ColMate

	// Claim protocol: CAS the column first, then publish the row side.
	tryMatch := func(i, j int32) bool {
		if atomic.LoadInt32(&rowMate[i]) != exact.NIL {
			return false
		}
		if !atomic.CompareAndSwapInt32(&colMate[j], exact.NIL, i) {
			return false
		}
		if !atomic.CompareAndSwapInt32(&rowMate[i], exact.NIL, j) {
			// The row was taken concurrently; release the column.
			atomic.StoreInt32(&colMate[j], exact.NIL)
			return false
		}
		return true
	}

	// Pass 1: degree-one rule, both sides, without degree tracking — only
	// vertices that are degree-one in the *input* are handled (newly
	// arising degree-one vertices are missed; that is the approximation).
	pool.For(n, workers, par.Dynamic, par.DefaultChunk, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if a.Degree(i) == 1 {
				tryMatch(int32(i), a.Idx[a.Ptr[i]])
			}
		}
	})
	pool.For(m, workers, par.Dynamic, par.DefaultChunk, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			if at.Degree(j) == 1 {
				tryMatch(at.Idx[at.Ptr[j]], int32(j))
			}
		}
	})

	// Pass 2: random-order greedy over rows; each row claims a random
	// free neighbor (retrying over its adjacency once).
	base := xrand.Base(seed)
	pool.For(n, workers, par.Dynamic, par.DefaultChunk, func(_, lo, hi int) {
		var rng xrand.SplitMix64
		for i := lo; i < hi; i++ {
			if atomic.LoadInt32(&rowMate[i]) != exact.NIL {
				continue
			}
			deg := a.Degree(i)
			if deg == 0 {
				continue
			}
			rng.SetIndexed(base, i)
			off := rng.Intn(deg)
			for k := 0; k < deg; k++ {
				j := a.Idx[a.Ptr[i]+(off+k)%deg]
				if atomic.LoadInt32(&colMate[j]) == exact.NIL && tryMatch(int32(i), j) {
					break
				}
			}
		}
	})

	size := 0
	for i := 0; i < n; i++ {
		if rowMate[i] != exact.NIL {
			size++
		}
	}
	mt.Size = size
	return mt
}
