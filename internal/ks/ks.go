// Package ks implements the classic sequential Karp–Sipser heuristic for
// bipartite graphs (Karp and Sipser, FOCS 1981), the baseline of the
// paper's Table 1 experiment.
//
// The heuristic repeats two rules until the graph is consumed:
//
//  1. if a vertex of degree one exists, match it with its unique neighbor
//     (an optimal decision) and delete both;
//  2. otherwise pick an edge uniformly at random among the remaining
//     edges, match its endpoints and delete them.
//
// The stage before the first random pick is Phase 1; everything after is
// Phase 2. The implementation keeps an explicit degree-one queue and a
// live-edge array with swap-remove lazy deletion so that every random draw
// is uniform over the currently alive edges — the property the Fig. 2
// bad-case analysis relies on.
package ks

import (
	"repro/internal/buf"
	"repro/internal/exact"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// Stats reports how the run unfolded.
type Stats struct {
	Phase1Matches int // matches made by the degree-one rule before the first random pick
	RandomPicks   int // matches made by rule 2
	DegreeOne     int // total matches made by the degree-one rule
}

// edge is one live entry of the uniform random-pick array (row, col).
type edge struct{ i, j int32 }

// Workspace owns the sequential heuristic's scratch state — the degree and
// liveness arrays, the degree-one queue, the live-edge array and the
// matching — so repeated runs (a matcher session serving many seeds)
// reuse the buffers instead of reallocating ~2·nnz + 4·(n+m) machine words
// per call. The zero value is ready to use; buffers grow on demand. The
// matching returned by RunWs aliases the workspace and is valid until its
// next run. Not safe for concurrent use.
type Workspace struct {
	deg   []int32
	alive []bool
	queue []int32
	edges []edge
	mt    exact.Matching
}

// Run executes Karp–Sipser on the bipartite graph with CSR a and its
// transpose at, using the RNG seed. It returns the matching and statistics.
func Run(a, at *sparse.CSR, seed uint64) (*exact.Matching, Stats) {
	return RunWs(a, at, seed, nil)
}

// RunWs is Run drawing every buffer from ws (nil means a throwaway
// workspace, which makes it exactly Run).
func RunWs(a, at *sparse.CSR, seed uint64, ws *Workspace) (*exact.Matching, Stats) {
	return RunWsCancel(a, at, seed, ws, nil)
}

// cancelStride is how many heuristic steps (queue pops or random picks)
// pass between polls of the cancellation hook — the same order of
// granularity as the parallel kernels' per-chunk checks.
const cancelStride = 4096

// RunWsCancel is RunWs with a cooperative cancellation hook: cancel (when
// non-nil) is polled every few thousand heuristic steps, and once it
// reports true the run aborts, returning a nil matching and the statistics
// accumulated so far. The workspace stays reusable. A nil cancel is
// exactly RunWs.
func RunWsCancel(a, at *sparse.CSR, seed uint64, ws *Workspace, cancel func() bool) (*exact.Matching, Stats) {
	if ws == nil {
		ws = &Workspace{}
	}
	n, m := a.RowsN, a.ColsN
	rng := xrand.New(seed)
	ws.mt.RowMate = buf.Grow(ws.mt.RowMate, n)
	ws.mt.ColMate = buf.Grow(ws.mt.ColMate, m)
	for i := range ws.mt.RowMate {
		ws.mt.RowMate[i] = exact.NIL
	}
	for j := range ws.mt.ColMate {
		ws.mt.ColMate[j] = exact.NIL
	}
	ws.mt.Size = 0
	mt := &ws.mt
	var st Stats

	// Vertices 0..n-1 are rows; n..n+m-1 are columns.
	deg := buf.Grow(ws.deg, n+m)
	for i := 0; i < n; i++ {
		deg[i] = int32(a.Degree(i))
	}
	for j := 0; j < m; j++ {
		deg[n+j] = int32(at.Degree(j))
	}
	ws.alive = buf.Grow(ws.alive, n+m)
	alive := ws.alive
	for v := range alive {
		alive[v] = deg[v] > 0
	}

	queue := ws.queue[:0]
	for v := 0; v < n+m; v++ {
		if alive[v] && deg[v] == 1 {
			queue = append(queue, int32(v))
		}
	}

	// Live edge array for uniform random picks.
	edges := ws.edges[:0]
	for i := 0; i < n; i++ {
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			edges = append(edges, edge{int32(i), a.Idx[p]})
		}
	}

	// consume removes vertex v from the graph, decrementing neighbor
	// degrees and enqueueing fresh degree-one vertices.
	consume := func(v int32) {
		alive[v] = false
		if v < int32(n) {
			i := int(v)
			for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
				u := int32(n) + a.Idx[p]
				if alive[u] {
					deg[u]--
					if deg[u] == 1 {
						queue = append(queue, u)
					}
				}
			}
			return
		}
		j := int(v) - n
		for p := at.Ptr[j]; p < at.Ptr[j+1]; p++ {
			u := at.Idx[p]
			if alive[u] {
				deg[u]--
				if deg[u] == 1 {
					queue = append(queue, u)
				}
			}
		}
	}

	match := func(i, j int32) {
		mt.RowMate[i] = j
		mt.ColMate[j] = i
		mt.Size++
		consume(i)
		consume(int32(n) + j)
	}

	// liveNeighbor returns the unique alive neighbor of a degree-one
	// vertex (scanning its adjacency).
	liveNeighbor := func(v int32) (int32, bool) {
		if v < int32(n) {
			i := int(v)
			for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
				if alive[int32(n)+a.Idx[p]] {
					return a.Idx[p], true
				}
			}
			return 0, false
		}
		j := int(v) - n
		for p := at.Ptr[j]; p < at.Ptr[j+1]; p++ {
			if alive[at.Idx[p]] {
				return at.Idx[p], true
			}
		}
		return 0, false
	}

	inPhase1 := true
	// drainQueue reports false when the cancellation hook fired mid-drain.
	drainQueue := func() bool {
		for qh := 0; qh < len(queue); qh++ {
			if cancel != nil && qh%cancelStride == cancelStride-1 && cancel() {
				return false
			}
			v := queue[qh]
			if !alive[v] || deg[v] != 1 {
				continue
			}
			if v < int32(n) {
				if j, ok := liveNeighbor(v); ok {
					match(v, j)
					st.DegreeOne++
					if inPhase1 {
						st.Phase1Matches++
					}
				}
			} else {
				if i, ok := liveNeighbor(v); ok {
					match(i, v-int32(n))
					st.DegreeOne++
					if inPhase1 {
						st.Phase1Matches++
					}
				}
			}
		}
		queue = queue[:0]
		return true
	}

	// abort hands the buffers back and reports the canceled run.
	abort := func() (*exact.Matching, Stats) {
		ws.deg, ws.queue, ws.edges = deg, queue[:0], edges[:0]
		return nil, st
	}

	if !drainQueue() {
		return abort()
	}
	inPhase1 = false
	steps := 0
	for len(edges) > 0 {
		steps++
		if cancel != nil && steps%cancelStride == 0 && cancel() {
			return abort()
		}
		// Uniform pick over live edges with swap-remove lazy deletion.
		k := rng.Intn(len(edges))
		e := edges[k]
		if !alive[e.i] || !alive[int32(n)+e.j] {
			edges[k] = edges[len(edges)-1]
			edges = edges[:len(edges)-1]
			continue
		}
		match(e.i, e.j)
		st.RandomPicks++
		edges[k] = edges[len(edges)-1]
		edges = edges[:len(edges)-1]
		if !drainQueue() {
			return abort()
		}
	}
	// Hand the (possibly regrown) buffers back so the next run on this
	// workspace starts from their full capacity.
	ws.deg, ws.queue, ws.edges = deg, queue[:0], edges[:0]
	return mt, st
}
