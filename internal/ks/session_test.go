package ks

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/sparse"
)

func cmpMatchings(t *testing.T, what string, got, want *exact.Matching) {
	t.Helper()
	if got.Size != want.Size {
		t.Fatalf("%s: size %d want %d", what, got.Size, want.Size)
	}
	for i := range want.RowMate {
		if got.RowMate[i] != want.RowMate[i] {
			t.Fatalf("%s: RowMate[%d] = %d want %d", what, i, got.RowMate[i], want.RowMate[i])
		}
	}
	for j := range want.ColMate {
		if got.ColMate[j] != want.ColMate[j] {
			t.Fatalf("%s: ColMate[%d] = %d want %d", what, j, got.ColMate[j], want.ColMate[j])
		}
	}
}

// TestRunWsReuseMatchesRun pins the sequential workspace: repeated RunWs
// calls through one Workspace — across seeds and differently sized graphs,
// forcing regrows — reproduce the allocating Run exactly, matching and
// statistics alike.
func TestRunWsReuseMatchesRun(t *testing.T) {
	ws := &Workspace{}
	mats := []*sparse.CSR{
		gen.ERAvgDeg(800, 800, 4, 3),
		gen.ERAvgDeg(1500, 1200, 3, 5), // bigger: forces regrow
		gen.BadKS(200, 8),
	}
	for k, a := range mats {
		at := a.Transpose()
		for _, seed := range []uint64{1, 9, 9, 42} {
			want, wantSt := Run(a, at, seed)
			got, gotSt := RunWs(a, at, seed, ws)
			cmpMatchings(t, "RunWs", got, want)
			if gotSt != wantSt {
				t.Fatalf("mat %d seed %d: stats %+v want %+v", k, seed, gotSt, wantSt)
			}
		}
	}
}

// TestApproxSessionMatchesRunApprox pins the parallel-baseline session: at
// one worker the result is fully deterministic and must equal RunApprox
// call for call; at higher widths the size and validity are compared (the
// CAS claim order is scheduling-dependent, as for the one-shot).
func TestApproxSessionMatchesRunApprox(t *testing.T) {
	a := gen.ERAvgDeg(2000, 2000, 4, 7)
	at := a.Transpose()
	pool := par.NewPool(4)
	defer pool.Close()

	s1 := NewApproxSession(a, at, 1, pool)
	for _, seed := range []uint64{1, 5, 5, 13} {
		want := RunApproxPool(a, at, seed, 1, pool)
		got := s1.Run(seed)
		cmpMatchings(t, "approx session", got, want)
	}

	s4 := NewApproxSession(a, at, 4, pool)
	for _, seed := range []uint64{1, 5} {
		got := s4.Run(seed)
		for i, j := range got.RowMate {
			if j != exact.NIL && got.ColMate[j] != int32(i) {
				t.Fatalf("seed %d: inconsistent mates row %d col %d", seed, i, j)
			}
		}
		if got.Size == 0 {
			t.Fatalf("seed %d: empty matching", seed)
		}
	}

	// Rebind reuses the buffers on a smaller graph.
	b := gen.ERAvgDeg(500, 700, 3, 11)
	bt := b.Transpose()
	s1.Rebind(b, bt)
	want := RunApproxPool(b, bt, 3, 1, pool)
	cmpMatchings(t, "rebound approx", s1.Run(3), want)
}
