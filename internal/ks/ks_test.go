package ks

import (
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/sparse"
)

func runKS(t *testing.T, a *sparse.CSR, seed uint64) (*exact.Matching, Stats) {
	t.Helper()
	mt, st := Run(a, a.Transpose(), seed)
	// Validate.
	size := 0
	for i, j := range mt.RowMate {
		if j == exact.NIL {
			continue
		}
		size++
		if mt.ColMate[j] != int32(i) {
			t.Fatalf("inconsistent mates row %d col %d", i, j)
		}
		ok := false
		for _, c := range a.Row(i) {
			if c == j {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("matched non-edge (%d,%d)", i, j)
		}
	}
	if size != mt.Size {
		t.Fatalf("size %d vs %d matched", mt.Size, size)
	}
	return mt, st
}

func TestKSExactOnTrees(t *testing.T) {
	// A path graph is a tree: KS phase 1 alone finds a maximum matching.
	n := 50
	entries := []sparse.Coord{}
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{I: int32(i), J: int32(i)})
		if i+1 < n {
			entries = append(entries, sparse.Coord{I: int32(i + 1), J: int32(i)})
		}
	}
	a, _ := sparse.FromCOO(n, n, entries, false)
	mt, st := runKS(t, a, 1)
	if mt.Size != n {
		t.Fatalf("KS on path: %d want %d", mt.Size, n)
	}
	if st.RandomPicks != 0 {
		t.Fatalf("KS needed %d random picks on a tree", st.RandomPicks)
	}
}

func TestKSExactOnIdentity(t *testing.T) {
	a := gen.Identity(40)
	mt, st := runKS(t, a, 1)
	if mt.Size != 40 || st.RandomPicks != 0 {
		t.Fatalf("identity: size %d, random %d", mt.Size, st.RandomPicks)
	}
}

func TestKSMaximalMatching(t *testing.T) {
	// KS always produces a maximal matching: no edge with both endpoints
	// free can remain.
	f := func(seed uint64, d uint8) bool {
		a := gen.ERAvgDeg(200, 200, float64(d%5)+1, seed)
		mt, _ := Run(a, a.Transpose(), seed)
		for i := 0; i < a.RowsN; i++ {
			if mt.RowMate[i] != exact.NIL {
				continue
			}
			for _, j := range a.Row(i) {
				if mt.ColMate[j] == exact.NIL {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKSAtLeastHalf(t *testing.T) {
	// Maximal matchings are 1/2-approximations.
	for seed := uint64(1); seed <= 10; seed++ {
		a := gen.ERAvgDeg(300, 300, 3, seed)
		mt, _ := runKS(t, a, seed)
		sp := exact.Sprank(a)
		if 2*mt.Size < sp {
			t.Fatalf("KS size %d below half of %d", mt.Size, sp)
		}
	}
}

func TestKSNearOptimalOnSparseRandom(t *testing.T) {
	// Aronson–Frieze–Pittel: KS leaves o(n) vertices unmatched on sparse
	// random graphs. Expect >= 0.95 quality on ER with d=2..3.
	a := gen.ERAvgDeg(5000, 5000, 2, 77)
	mt, _ := runKS(t, a, 99)
	sp := exact.Sprank(a)
	if q := float64(mt.Size) / float64(sp); q < 0.95 {
		t.Fatalf("KS quality %v on sparse ER, expected near-optimal", q)
	}
}

func TestKSBadCaseDegradesWithK(t *testing.T) {
	// The Table 1 phenomenon: KS quality decreases as k grows. At k=32 the
	// paper measures ≈0.67 (min of 10 runs); allow slack but require a
	// clear gap from optimal.
	n := 640
	q := func(k int) float64 {
		a := gen.BadKS(n, k)
		at := a.Transpose()
		worst := 1.0
		for seed := uint64(1); seed <= 5; seed++ {
			mt, _ := Run(a, at, seed)
			if v := float64(mt.Size) / float64(n); v < worst {
				worst = v
			}
		}
		return worst
	}
	q1, q32 := q(1), q(32)
	if q1 != 1.0 {
		t.Fatalf("k=1 should be solved exactly by phase 1, got %v", q1)
	}
	if q32 > 0.85 {
		t.Fatalf("k=32 quality %v: bad case not hurting KS", q32)
	}
}

func TestKSPhase1StatsOnBadCase(t *testing.T) {
	// k>1 has no degree-one vertices: phase 1 must make zero matches.
	a := gen.BadKS(64, 4)
	_, st := runKS(t, a, 3)
	if st.Phase1Matches != 0 {
		t.Fatalf("phase 1 matched %d on k=4 bad case", st.Phase1Matches)
	}
	if st.RandomPicks == 0 {
		t.Fatal("expected random picks on k=4 bad case")
	}
}

func TestKSDeterministicPerSeed(t *testing.T) {
	a := gen.ERAvgDeg(500, 500, 4, 5)
	at := a.Transpose()
	m1, _ := Run(a, at, 42)
	m2, _ := Run(a, at, 42)
	for i := range m1.RowMate {
		if m1.RowMate[i] != m2.RowMate[i] {
			t.Fatal("same seed produced different matchings")
		}
	}
}

func TestKSEmptyAndTiny(t *testing.T) {
	empty, _ := sparse.FromCOO(3, 3, nil, false)
	mt, st := runKS(t, empty, 1)
	if mt.Size != 0 || st.RandomPicks != 0 {
		t.Fatal("empty graph mishandled")
	}
	single := sparse.FromDense([][]int{{1}})
	mt, _ = runKS(t, single, 1)
	if mt.Size != 1 {
		t.Fatal("single edge not matched")
	}
}

func TestKSRectangular(t *testing.T) {
	a := gen.ER(50, 80, 200, 9)
	mt, _ := runKS(t, a, 2)
	if mt.Size > 50 {
		t.Fatal("matching exceeds row count")
	}
	if 2*mt.Size < exact.Sprank(a) {
		t.Fatal("below half-approximation on rectangular instance")
	}
}
