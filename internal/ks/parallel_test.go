package ks

import (
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/gen"
)

func TestRunApproxValidMatching(t *testing.T) {
	f := func(seed uint64, d uint8, w uint8) bool {
		a := gen.ERAvgDeg(300, 300, float64(d%5)+1, seed)
		at := a.Transpose()
		mt := RunApprox(a, at, seed, int(w)%8+1)
		size := 0
		for i, j := range mt.RowMate {
			if j == exact.NIL {
				continue
			}
			size++
			if mt.ColMate[j] != int32(i) {
				return false
			}
			ok := false
			for _, c := range a.Row(i) {
				if c == j {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return size == mt.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRunApproxMaximal(t *testing.T) {
	// The second pass gives every free row a full scan over its adjacency,
	// so the result is maximal (>= 1/2 of the maximum).
	for seed := uint64(1); seed <= 10; seed++ {
		a := gen.ERAvgDeg(400, 400, 3, seed)
		at := a.Transpose()
		mt := RunApprox(a, at, seed, 4)
		for i := 0; i < a.RowsN; i++ {
			if mt.RowMate[i] != exact.NIL {
				continue
			}
			for _, j := range a.Row(i) {
				if mt.ColMate[j] == exact.NIL {
					t.Fatalf("seed %d: free edge (%d,%d) remains", seed, i, j)
				}
			}
		}
		if 2*mt.Size < exact.Sprank(a) {
			t.Fatalf("seed %d: below half-approximation", seed)
		}
	}
}

func TestRunApproxWeakerThanExactKS(t *testing.T) {
	// On sparse random graphs the exact sequential KS (with full degree
	// tracking) should dominate the approximate parallel variant on
	// average — this is the gap the paper's §2.1/§3.2 discussion points
	// at. Compare sums over several seeds to avoid flakiness.
	a := gen.ERAvgDeg(20000, 20000, 2, 5)
	at := a.Transpose()
	exactSum, approxSum := 0, 0
	for seed := uint64(1); seed <= 5; seed++ {
		mt, _ := Run(a, at, seed)
		exactSum += mt.Size
		approxSum += RunApprox(a, at, seed, 8).Size
	}
	if approxSum >= exactSum {
		t.Fatalf("approximate KS (%d) should not beat exact KS (%d) on sparse ER",
			approxSum, exactSum)
	}
}

func TestRunApproxDegreeOnePass(t *testing.T) {
	// On a path graph the input has two degree-one endpoints; the parallel
	// variant still produces a valid maximal matching (though possibly
	// smaller than the exact KS result of n).
	a := gen.Band(101, 0, -1) // bidiagonal: rows 1..n have degree 2, row 0 degree 1
	at := a.Transpose()
	mt := RunApprox(a, at, 3, 4)
	if mt.Size == 0 {
		t.Fatal("no matches on bidiagonal")
	}
	if 2*mt.Size < exact.Sprank(a) {
		t.Fatal("below half guarantee")
	}
}

func TestRunApproxManyWorkersConsistentValidity(t *testing.T) {
	a := gen.ERAvgDeg(5000, 5000, 4, 9)
	at := a.Transpose()
	for _, w := range []int{1, 2, 8, 16, 32} {
		mt := RunApprox(a, at, 7, w)
		bad := 0
		for i, j := range mt.RowMate {
			if j != exact.NIL && mt.ColMate[j] != int32(i) {
				bad++
			}
		}
		if bad != 0 {
			t.Fatalf("workers=%d: %d inconsistent pairs", w, bad)
		}
	}
}
