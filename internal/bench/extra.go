package bench

import (
	"math"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/ks"
	"repro/internal/par"
	"repro/internal/scale"
	"repro/internal/sparse"
)

// ConjectureRow is one size point of the Conjecture 1 evidence: on the
// all-ones matrix, TwoSidedMatch matches a 2(1-ρ)n ≈ 0.8656n fraction
// asymptotically (ρ solves x·eˣ = 1), while OneSidedMatch sits at
// 1 - 1/e ≈ 0.6321.
type ConjectureRow struct {
	N          int
	OneFrac    float64
	TwoFrac    float64
	TwoIsMaxOf float64 // max matching of the sampled 1-out graph / n
}

// ConjectureTarget is 2(1-ρ) with ρ the unique root of x e^x = 1.
func ConjectureTarget() float64 {
	// Newton iteration for x e^x - 1 = 0.
	x := 0.5
	for i := 0; i < 60; i++ {
		f := x*math.Exp(x) - 1
		fp := math.Exp(x) * (1 + x)
		x -= f / fp
	}
	return 2 * (1 - x)
}

// Conjecture runs the experiment over growing n.
func Conjecture(cfg Config, sizes []int) []ConjectureRow {
	cfg = cfg.Defaults()
	if len(sizes) == 0 {
		sizes = []int{500, 1000, 2000, 4000, 8000}
	}
	var rows []ConjectureRow
	for _, n := range sizes {
		a := gen.Full(n)
		at := a.Transpose()
		res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 1})
		if err != nil {
			panic(err)
		}
		o := core.Options{Policy: par.Dynamic, KSPolicy: par.Guided, Seed: cfg.Seed + uint64(n)}
		_, oneSize := core.OneSided(a, res.DR, res.DC, o)
		two := core.TwoSided(a, at, res.DR, res.DC, o)
		// Cross-check: the sampled 1-out graph's true maximum matching.
		maxOneOut := exact.HopcroftKarp(two.Graph.ToCSR(), nil).Size
		rows = append(rows, ConjectureRow{
			N:          n,
			OneFrac:    float64(oneSize) / float64(n),
			TwoFrac:    float64(two.Matching.Size) / float64(n),
			TwoIsMaxOf: float64(maxOneOut) / float64(n),
		})
	}
	t := Table{
		Title: "Conjecture 1: random 1-out graph matching fraction " +
			"(targets: OneSided 0.632, TwoSided " + f3(ConjectureTarget()) + ")",
		Headers: []string{"n", "OneSided/n", "TwoSided/n", "max(1-out)/n"},
	}
	for _, r := range rows {
		t.AddRow(itoa(r.N), f3(r.OneFrac), f3(r.TwoFrac), f3(r.TwoIsMaxOf))
	}
	t.Write(cfg.Out)
	return rows
}

// QualityFIRow is one point of the §4.1.1 study on matrices with total
// support: minimum observed quality over Config.Runs runs after 10 scaling
// iterations, to be compared against 0.632 / 0.866.
type QualityFIRow struct {
	N, Extras  int
	OneQ, TwoQ float64
}

// QualityFI sweeps fully indecomposable instances.
func QualityFI(cfg Config, sizes []int) []QualityFIRow {
	cfg = cfg.Defaults()
	if len(sizes) == 0 {
		sizes = []int{1000, 10000, 50000}
	}
	var rows []QualityFIRow
	for _, n := range sizes {
		for _, extras := range []int{1, 2, 4} {
			a := gen.FullyIndecomposable(n, extras, cfg.Seed+uint64(n+extras))
			at := a.Transpose()
			res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 10})
			if err != nil {
				panic(err)
			}
			row := QualityFIRow{N: n, Extras: extras, OneQ: 1, TwoQ: 1}
			for r := 0; r < cfg.Runs; r++ {
				o := core.Options{Policy: par.Dynamic, KSPolicy: par.Guided,
					Seed: cfg.Seed + uint64(r)*2654435761}
				_, oneSize := core.OneSided(a, res.DR, res.DC, o)
				if q := float64(oneSize) / float64(n); q < row.OneQ {
					row.OneQ = q
				}
				two := core.TwoSided(a, at, res.DR, res.DC, o)
				if q := float64(two.Matching.Size) / float64(n); q < row.TwoQ {
					row.TwoQ = q
				}
			}
			rows = append(rows, row)
		}
	}
	t := Table{
		Title: "§4.1.1: quality on total-support matrices, 10 SK iterations " +
			"(guarantees 0.632 / 0.866, min of " + itoa(cfg.Runs) + " runs)",
		Headers: []string{"n", "extras", "OneSided", "TwoSided", "one>=0.632", "two>=0.866"},
	}
	for _, r := range rows {
		t.AddRow(itoa(r.N), itoa(r.Extras), f3(r.OneQ), f3(r.TwoQ),
			boolMark(r.OneQ >= 0.632), boolMark(r.TwoQ >= 0.866))
	}
	t.Write(cfg.Out)
	return rows
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// AblationRow compares design choices: Sinkhorn–Knopp vs Ruiz scaling
// error at equal iteration budgets, and the resulting TwoSidedMatch
// quality.
type AblationRow struct {
	Iters    int
	SKErr    float64
	RuizErr  float64
	SKQual   float64
	RuizQual float64
}

// AblationScaling compares the two scaling methods (a §2.2 discussion
// point: SK converges faster on unsymmetric matrices).
func AblationScaling(cfg Config, n int) []AblationRow {
	cfg = cfg.Defaults()
	if n <= 0 {
		n = 20000
	}
	a := gen.FullyIndecomposable(n, 3, cfg.Seed)
	at := a.Transpose()
	var rows []AblationRow
	for _, it := range []int{1, 2, 5, 10, 20} {
		sk, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: it})
		if err != nil {
			panic(err)
		}
		rz, err := scale.Ruiz(a, at, scale.Options{MaxIters: it})
		if err != nil {
			panic(err)
		}
		o := core.Options{Policy: par.Dynamic, KSPolicy: par.Guided, Seed: cfg.Seed}
		skTwo := core.TwoSided(a, at, sk.DR, sk.DC, o)
		rzTwo := core.TwoSided(a, at, rz.DR, rz.DC, o)
		rows = append(rows, AblationRow{
			Iters: it, SKErr: sk.Err, RuizErr: rz.Err,
			SKQual:   float64(skTwo.Matching.Size) / float64(n),
			RuizQual: float64(rzTwo.Matching.Size) / float64(n),
		})
	}
	t := Table{
		Title:   "Ablation: Sinkhorn-Knopp vs Ruiz at equal iteration budgets (n=" + itoa(n) + ")",
		Headers: []string{"iters", "SK err", "Ruiz err", "SK two-q", "Ruiz two-q"},
	}
	for _, r := range rows {
		t.AddRow(itoa(r.Iters), f3(r.SKErr), f3(r.RuizErr), f3(r.SKQual), f3(r.RuizQual))
	}
	t.Write(cfg.Out)
	return rows
}

// KSVariantRow compares the three Karp–Sipser flavors on one instance:
// the classic exact-degree-tracking sequential KS, the Azad-style
// lock-free parallel approximation (paper ref [4]) and TwoSidedMatch
// (scaling + exact KS on the 1-out graph).
type KSVariantRow struct {
	Name                         string
	ExactKSQ, ApproxKSQ, TwoQ    float64
	ExactKSMs, ApproxKSMs, TwoMs float64
}

// AblationKSVariants runs the comparison on a sparse ER instance and the
// adversarial family — the narrative of the paper's §1/§2.1.
func AblationKSVariants(cfg Config, n int) []KSVariantRow {
	cfg = cfg.Defaults()
	if n <= 0 {
		n = 100000
	}
	instances := []struct {
		name  string
		build func() *sparse.CSR
	}{
		{"er-d2", func() *sparse.CSR { return gen.ERAvgDeg(n, n, 2, cfg.Seed) }},
		{"er-d5", func() *sparse.CSR { return gen.ERAvgDeg(n, n, 5, cfg.Seed) }},
		{"badks-k32", func() *sparse.CSR { return gen.BadKS(3200, 32) }},
	}
	var rows []KSVariantRow
	for _, inst := range instances {
		a := inst.build()
		at := a.Transpose()
		sp := exact.HopcroftKarp(a, nil).Size
		row := KSVariantRow{Name: inst.name}

		var size int
		d := TimeBest(3, func() {
			mt, _ := ks.Run(a, at, cfg.Seed)
			size = mt.Size
		})
		row.ExactKSQ = float64(size) / float64(sp)
		row.ExactKSMs = float64(d.Microseconds()) / 1000

		d = TimeBest(3, func() {
			size = ks.RunApprox(a, at, cfg.Seed, 0).Size
		})
		row.ApproxKSQ = float64(size) / float64(sp)
		row.ApproxKSMs = float64(d.Microseconds()) / 1000

		res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 5})
		if err != nil {
			panic(err)
		}
		d = TimeBest(3, func() {
			o := core.Options{Policy: par.Dynamic, KSPolicy: par.Guided, Seed: cfg.Seed}
			size = core.TwoSided(a, at, res.DR, res.DC, o).Matching.Size
		})
		row.TwoQ = float64(size) / float64(sp)
		row.TwoMs = float64(d.Microseconds()) / 1000
		rows = append(rows, row)
	}
	t := Table{
		Title: "Ablation: Karp-Sipser variants (exact seq. vs lock-free parallel [4] vs TwoSided)",
		Headers: []string{"instance", "exactKS q", "ms", "parKS q", "ms",
			"TwoSided q", "ms"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, f3(r.ExactKSQ), f1(r.ExactKSMs),
			f3(r.ApproxKSQ), f1(r.ApproxKSMs), f3(r.TwoQ), f1(r.TwoMs))
	}
	t.Write(cfg.Out)
	return rows
}

// AblationSchedule compares loop scheduling policies for OneSidedMatch on
// a degree-skewed instance (the Table 3 load-imbalance discussion).
func AblationSchedule(cfg Config, n int) map[string]float64 {
	cfg = cfg.Defaults()
	if n <= 0 {
		n = 60000
	}
	a := gen.PowerLaw(n, 15, 1.35, 30000, cfg.Seed)
	at := a.Transpose()
	res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 1})
	if err != nil {
		panic(err)
	}
	w := cfg.Threads[len(cfg.Threads)-1]
	out := map[string]float64{}
	t := Table{
		Title:   "Ablation: scheduling policy for OneSidedMatch on a skewed instance (threads=" + itoa(w) + ")",
		Headers: []string{"policy", "time(ms)"},
	}
	for _, pol := range []par.Policy{par.Static, par.Dynamic, par.Guided} {
		d := TimeBest(3, func() {
			core.OneSided(a, res.DR, res.DC, core.Options{
				Workers: w, Policy: pol, KSPolicy: pol, Seed: cfg.Seed})
		})
		outMs := float64(d.Microseconds()) / 1000.0
		out[pol.String()] = outMs
		t.AddRow(pol.String(), f1(outMs))
	}
	t.Write(cfg.Out)
	return out
}
