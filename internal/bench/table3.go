package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/par"
	"repro/internal/scale"
	"repro/internal/sparse"
)

// Table3Row reproduces one row of Table 3: instance statistics, scaling
// error after 1/5/10 Sinkhorn–Knopp iterations and the sequential running
// times of the four kernels. As in the paper, the OneSidedMatch time
// includes ScaleSK (one iteration), and TwoSidedMatch includes ScaleSK and
// KarpSipserMT.
type Table3Row struct {
	Name, PaperName                             string
	N, Edges                                    int
	AvgDeg                                      float64
	SprankRatio                                 float64
	Err1, Err5, Err10                           float64
	TScale, TOneSided, TKarpSipserMT, TTwoSided time.Duration
}

// Table3 measures all catalog instances sequentially (one worker).
func Table3(cfg Config) []Table3Row {
	cfg = cfg.Defaults()
	var rows []Table3Row
	for _, inst := range Catalog(cfg.Scale) {
		rows = append(rows, table3One(cfg, inst))
	}
	report3(cfg, rows)
	return rows
}

func table3One(cfg Config, inst Instance) Table3Row {
	a := inst.Build()
	at := a.Transpose()
	row := Table3Row{
		Name: inst.Name, PaperName: inst.PaperName,
		N: a.RowsN, Edges: a.NNZ(), AvgDeg: a.AvgDegree(),
	}
	row.SprankRatio = float64(exact.HopcroftKarp(a, nil).Size) / float64(a.RowsN)

	// Scaling error after 1, 5, 10 iterations (one run of 10 records all).
	res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 10, Workers: 1})
	if err != nil {
		panic(err)
	}
	row.Err1, row.Err5, row.Err10 = res.History[1], res.History[5], res.History[10]

	seq := core.Options{Workers: 1, Policy: par.Dynamic, KSPolicy: par.Guided, Seed: cfg.Seed}
	reps := 3
	if cfg.Scale == "paper" {
		reps = 1
	}

	// ScaleSK, one iteration, sequential.
	row.TScale = TimeBest(reps, func() {
		if _, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 1, Workers: 1}); err != nil {
			panic(err)
		}
	})
	// OneSidedMatch = ScaleSK(1) + sampling + write.
	row.TOneSided = TimeBest(reps, func() {
		r, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 1, Workers: 1})
		if err != nil {
			panic(err)
		}
		core.OneSided(a, r.DR, r.DC, seq)
	})
	// KarpSipserMT alone on a pre-sampled choice graph.
	g := sampleChoiceGraph(a, at, res.DR, res.DC, seq)
	row.TKarpSipserMT = TimeBest(reps, func() { core.KarpSipserMT(g, seq) })
	// TwoSidedMatch = ScaleSK(1) + sampling both sides + KarpSipserMT.
	row.TTwoSided = TimeBest(reps, func() {
		r, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 1, Workers: 1})
		if err != nil {
			panic(err)
		}
		core.TwoSided(a, at, r.DR, r.DC, seq)
	})
	return row
}

func sampleChoiceGraph(a, at *sparse.CSR, dr, dc []float64, o core.Options) *core.ChoiceGraph {
	r := core.SampleRowChoices(a, dr, dc, o)
	c := core.SampleColChoices(at, dr, dc, o)
	return core.NewChoiceGraph(a.RowsN, a.ColsN, r, c)
}

func report3(cfg Config, rows []Table3Row) {
	t := Table{
		Title: "Table 3: instance statistics, scaling error and sequential times (ms)",
		Headers: []string{"instance", "paper", "n", "edges", "deg",
			"sprank/n", "err@1", "err@5", "err@10",
			"ScaleSK", "OneSided", "KarpSipMT", "TwoSided"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, r.PaperName, itoa(r.N), itoa(r.Edges), f1(r.AvgDeg),
			f2(r.SprankRatio), f2(r.Err1), f2(r.Err5), f2(r.Err10),
			ms(r.TScale), ms(r.TOneSided), ms(r.TKarpSipserMT), ms(r.TTwoSided))
	}
	t.Write(cfg.Out)
}
