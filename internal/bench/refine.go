package bench

import (
	"fmt"

	"repro/internal/cheap"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/sparse"
)

// refineCases are the refinement tier's instances: the adversarial
// families built to stress augmenting-path engines. Heavy rank deficiency
// (30% of the rows are structurally unmatchable) keeps thousands of rows
// permanently exposed — the regime where the graft engine's idle surviving
// trees beat per-phase whole-graph BFS — long thin paths maximize
// augmenting-path length, and degree skew unbalances the BFS levels.
//
// prSafe marks the instances push-relabel is measured on. Structural
// deficiency is its worst case — every doomed row raises its label all
// the way to the n+m+1 cap, which costs minutes even at tiny scale — so
// the tier only times it where the maximum matching is perfect.
func refineCases(scale string, seed uint64) []struct {
	name   string
	a      *sparse.CSR
	prSafe bool
} {
	n := 150000
	switch scale {
	case "tiny":
		n = 60000
	case "paper":
		n = 1000000
	}
	return []struct {
		name   string
		a      *sparse.CSR
		prSafe bool
	}{
		{"rankdef", gen.RankDeficient(n, n*3/10, 6, seed), false},
		{"longthin", gen.LongThinPath(2 * n), true},
		{"skewdeg", gen.SkewedDegree(n, n*4/5, 6, 3, seed), false},
	}
}

// Refine measures the three exact refinement engines — Hopcroft–Karp,
// push-relabel and the parallel MS-BFS-Graft — completing one shared
// heuristic warm start (the §2.1 cheap 1/2-approximation, so the tier
// measures the jump-start tail the paper's application cares about). The
// sequential engines run once (push-relabel only on its prSafe
// instances); graft runs at 1, 2 and 4 workers, and its speedup_vs_1 is
// against its own 1-worker run. The printed vs-hk column is the
// cross-engine ratio the perf gate tracks: sequential Hopcroft–Karp
// time over this engine's time on the same instance and warm start.
func Refine(cfg Config) []PerfRecord {
	cfg = cfg.Defaults()
	graftWidths := []int{1, 2, 4}
	pool := par.NewPool(graftWidths[len(graftWidths)-1])
	defer pool.Close()

	reps := 5
	var records []PerfRecord
	tbl := &Table{
		Title:   "refine: exact-refinement engines from one cheap warm start",
		Headers: []string{"instance", "edges", "engine", "threads", "ms", "quality", "speedup", "vs-hk"},
	}
	ws := &exact.Workspace{}
	for _, tc := range refineCases(cfg.Scale, cfg.Seed) {
		a := tc.a
		at := a.Transpose()
		init := cheap.RandomVertex(a, cfg.Seed)
		sprank := exact.HopcroftKarp(a, init).Size

		record := func(engine string, workers int, run func() *exact.Matching, anchor int64) int64 {
			var size int
			best := TimeBest(reps, func() { size = run().Size })
			if size != sprank {
				panic(fmt.Sprintf("bench: refine %s/%s reached %d, sprank is %d", tc.name, engine, size, sprank))
			}
			rec := PerfRecord{
				Instance:  tc.name,
				Edges:     a.NNZ(),
				Heuristic: engine,
				Workers:   workers,
				NsOp:      best.Nanoseconds(),
				Quality:   exact.Quality(size, sprank),
				Speedup:   1,
			}
			if anchor > 0 {
				rec.Speedup = float64(anchor) / float64(best.Nanoseconds())
			}
			records = append(records, rec)
			vsHK := "1.00"
			if len(records) > 1 {
				// The tier's first record per instance is always refine-hk.
				for _, r := range records {
					if r.Instance == tc.name && r.Heuristic == "refine-hk" {
						vsHK = f2(float64(r.NsOp) / float64(rec.NsOp))
						break
					}
				}
			}
			tbl.AddRow(tc.name, fmt.Sprintf("%d", a.NNZ()), engine,
				fmt.Sprintf("%d", workers), ms(best), f3(rec.Quality), f2(rec.Speedup), vsHK)
			return best.Nanoseconds()
		}

		record("refine-hk", 1, func() *exact.Matching {
			return exact.NewHKRefinerWs(a, init, ws).Run()
		}, 0)
		if tc.prSafe {
			record("refine-pushrelabel", 1, func() *exact.Matching {
				return exact.NewPRRefinerWs(a, init, ws).Run()
			}, 0)
		}
		var graftAnchor int64
		for _, th := range graftWidths {
			th := th
			ns := record("refine-graft", th, func() *exact.Matching {
				r := exact.NewGraftRefinerWs(a, init, ws)
				r.SetTranspose(at)
				if th > 1 {
					r.SetParallel(pool, th)
				}
				return r.Run()
			}, graftAnchor)
			if th == 1 {
				graftAnchor = ns
			}
		}
	}
	tbl.Write(cfg.Out)
	return records
}
