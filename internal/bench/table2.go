package bench

import (
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/scale"
)

// Table2Row reproduces one (d, iterations) cell group of Table 2: matching
// quality of both heuristics on sprank-deficient Erdős–Rényi matrices.
type Table2Row struct {
	D      int
	Iter   int
	Sprank int
	OneQ   float64 // min over runs
	TwoQ   float64 // min over runs
}

// Table2 runs the square experiment (paper: n = 100000) and the
// rectangular follow-up (m = n, n·1.2 columns at 5 iterations).
func Table2(cfg Config, n int) (rows []Table2Row, rectOne, rectTwo float64) {
	cfg = cfg.Defaults()
	if n <= 0 {
		n = 100000
	}
	iters := []int{0, 1, 5, 10}
	for _, d := range []int{2, 3, 4, 5} {
		a := gen.ERAvgDeg(n, n, float64(d), cfg.Seed+uint64(d))
		at := a.Transpose()
		sp := exact.HopcroftKarp(a, nil).Size
		for _, it := range iters {
			res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: it})
			if err != nil {
				panic(err)
			}
			row := Table2Row{D: d, Iter: it, Sprank: sp, OneQ: 1, TwoQ: 1}
			for r := 0; r < cfg.Runs; r++ {
				o := core.Options{Policy: par.Dynamic, KSPolicy: par.Guided,
					Seed: cfg.Seed + uint64(r)*104729}
				_, oneSize := core.OneSided(a, res.DR, res.DC, o)
				if q := float64(oneSize) / float64(sp); q < row.OneQ {
					row.OneQ = q
				}
				two := core.TwoSided(a, at, res.DR, res.DC, o)
				if q := float64(two.Matching.Size) / float64(sp); q < row.TwoQ {
					row.TwoQ = q
				}
			}
			rows = append(rows, row)
		}
	}

	// Rectangular case: m×1.2m, 5 scaling iterations (paper reports
	// minima 0.753 / 0.930).
	rectOne, rectTwo = rectangular(cfg, n, n+n/5)
	report2(cfg, n, rows, rectOne, rectTwo)
	return rows, rectOne, rectTwo
}

func rectangular(cfg Config, m, n int) (oneQ, twoQ float64) {
	a := gen.ERAvgDeg(m, n, 3, cfg.Seed+99)
	at := a.Transpose()
	sp := exact.HopcroftKarp(a, nil).Size
	res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 5})
	if err != nil {
		panic(err)
	}
	oneQ, twoQ = 1, 1
	for r := 0; r < cfg.Runs; r++ {
		o := core.Options{Policy: par.Dynamic, KSPolicy: par.Guided,
			Seed: cfg.Seed + uint64(r)*15485863}
		_, oneSize := core.OneSided(a, res.DR, res.DC, o)
		if q := float64(oneSize) / float64(sp); q < oneQ {
			oneQ = q
		}
		two := core.TwoSided(a, at, res.DR, res.DC, o)
		if q := float64(two.Matching.Size) / float64(sp); q < twoQ {
			twoQ = q
		}
	}
	return oneQ, twoQ
}

func report2(cfg Config, n int, rows []Table2Row, rectOne, rectTwo float64) {
	t := Table{
		Title: "Table 2: quality on sprank-deficient ER matrices (n=" + itoa(n) +
			", min of " + itoa(cfg.Runs) + " runs)",
		Headers: []string{"d", "iter", "sprank", "OneSided", "TwoSided"},
	}
	for _, r := range rows {
		t.AddRow(itoa(r.D), itoa(r.Iter), itoa(r.Sprank), f3(r.OneQ), f3(r.TwoQ))
	}
	t.AddRow("rect", "5", "-", f3(rectOne), f3(rectTwo))
	t.Write(cfg.Out)
}
