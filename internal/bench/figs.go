package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/par"
	"repro/internal/scale"
)

// SpeedupRow holds the thread sweep for one instance and one kernel:
// Speedup[i] is t(1 thread) / t(Threads[i]).
type SpeedupRow struct {
	Name, PaperName string
	Threads         []int
	Speedup         []float64
	T1              time.Duration
}

// Fig3 reproduces Figures 3a and 3b: speedups of ScaleSK (one iteration)
// and of the full OneSidedMatch across the thread sweep.
func Fig3(cfg Config) (scaleRows, oneRows []SpeedupRow) {
	cfg = cfg.Defaults()
	for _, inst := range Catalog(cfg.Scale) {
		sRow, oRow := fig3One(cfg, inst)
		scaleRows = append(scaleRows, sRow)
		oneRows = append(oneRows, oRow)
	}
	reportSpeedups(cfg, "Figure 3a: ScaleSK speedups (1 iteration)", scaleRows)
	reportSpeedups(cfg, "Figure 3b: OneSidedMatch speedups", oneRows)
	return scaleRows, oneRows
}

func fig3One(cfg Config, inst Instance) (sRow, oRow SpeedupRow) {
	a := inst.Build()
	at := a.Transpose()
	sRow = SpeedupRow{Name: inst.Name, PaperName: inst.PaperName, Threads: cfg.Threads}
	oRow = sRow

	times := func(w int) (time.Duration, time.Duration) {
		ts := TimeBest(3, func() {
			if _, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 1, Workers: w}); err != nil {
				panic(err)
			}
		})
		to := TimeBest(3, func() {
			r, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 1, Workers: w})
			if err != nil {
				panic(err)
			}
			core.OneSided(a, r.DR, r.DC, core.Options{
				Workers: w, Policy: par.Dynamic, KSPolicy: par.Guided, Seed: cfg.Seed})
		})
		return ts, to
	}
	t1s, t1o := times(1)
	sRow.T1, oRow.T1 = t1s, t1o
	for _, w := range cfg.Threads {
		ts, to := times(w)
		sRow.Speedup = append(sRow.Speedup, float64(t1s)/float64(ts))
		oRow.Speedup = append(oRow.Speedup, float64(t1o)/float64(to))
	}
	return sRow, oRow
}

// Fig4 reproduces Figures 4a and 4b: speedups of the KarpSipserMT kernel
// (on a pre-sampled choice graph) and of the full TwoSidedMatch.
func Fig4(cfg Config) (ksRows, twoRows []SpeedupRow) {
	cfg = cfg.Defaults()
	for _, inst := range Catalog(cfg.Scale) {
		kRow, tRow := fig4One(cfg, inst)
		ksRows = append(ksRows, kRow)
		twoRows = append(twoRows, tRow)
	}
	reportSpeedups(cfg, "Figure 4a: KarpSipserMT speedups", ksRows)
	reportSpeedups(cfg, "Figure 4b: TwoSidedMatch speedups", twoRows)
	return ksRows, twoRows
}

func fig4One(cfg Config, inst Instance) (kRow, tRow SpeedupRow) {
	a := inst.Build()
	at := a.Transpose()
	res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 1})
	if err != nil {
		panic(err)
	}
	g := sampleChoiceGraph(a, at, res.DR, res.DC,
		core.Options{Policy: par.Dynamic, KSPolicy: par.Guided, Seed: cfg.Seed})

	kRow = SpeedupRow{Name: inst.Name, PaperName: inst.PaperName, Threads: cfg.Threads}
	tRow = kRow
	times := func(w int) (time.Duration, time.Duration) {
		o := core.Options{Workers: w, Policy: par.Dynamic, KSPolicy: par.Guided, Seed: cfg.Seed}
		tk := TimeBest(3, func() { core.KarpSipserMT(g, o) })
		tt := TimeBest(3, func() {
			r, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: 1, Workers: w})
			if err != nil {
				panic(err)
			}
			core.TwoSided(a, at, r.DR, r.DC, o)
		})
		return tk, tt
	}
	t1k, t1t := times(1)
	kRow.T1, tRow.T1 = t1k, t1t
	for _, w := range cfg.Threads {
		tk, tt := times(w)
		kRow.Speedup = append(kRow.Speedup, float64(t1k)/float64(tk))
		tRow.Speedup = append(tRow.Speedup, float64(t1t)/float64(tt))
	}
	return kRow, tRow
}

func reportSpeedups(cfg Config, title string, rows []SpeedupRow) {
	headers := []string{"instance", "paper", "t1(ms)"}
	for _, w := range cfg.Threads {
		headers = append(headers, "x"+itoa(w))
	}
	t := Table{Title: title, Headers: headers}
	for _, r := range rows {
		cells := []string{r.Name, r.PaperName, ms(r.T1)}
		for _, s := range r.Speedup {
			cells = append(cells, f2(s))
		}
		t.AddRow(cells...)
	}
	t.Write(cfg.Out)
}

// QualityRow holds Figure 5 data: quality of both heuristics at 0, 1 and 5
// scaling iterations for one instance.
type QualityRow struct {
	Name, PaperName string
	Iters           []int
	OneQ, TwoQ      []float64
}

// Fig5 reproduces Figures 5a and 5b. The paper's reference lines are
// 0.632 (OneSided guarantee) and 0.866 (TwoSided conjecture).
func Fig5(cfg Config) []QualityRow {
	cfg = cfg.Defaults()
	iters := []int{0, 1, 5}
	var rows []QualityRow
	for _, inst := range Catalog(cfg.Scale) {
		a := inst.Build()
		at := a.Transpose()
		sp := exact.HopcroftKarp(a, nil).Size
		row := QualityRow{Name: inst.Name, PaperName: inst.PaperName, Iters: iters}
		for _, it := range iters {
			res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: it})
			if err != nil {
				panic(err)
			}
			o := core.Options{Policy: par.Dynamic, KSPolicy: par.Guided, Seed: cfg.Seed}
			_, oneSize := core.OneSided(a, res.DR, res.DC, o)
			two := core.TwoSided(a, at, res.DR, res.DC, o)
			row.OneQ = append(row.OneQ, float64(oneSize)/float64(sp))
			row.TwoQ = append(row.TwoQ, float64(two.Matching.Size)/float64(sp))
		}
		rows = append(rows, row)
	}
	t := Table{
		Title: "Figure 5: matching quality vs scaling iterations " +
			"(guarantees: OneSided 0.632, TwoSided 0.866)",
		Headers: []string{"instance", "paper",
			"one@0", "one@1", "one@5", "two@0", "two@1", "two@5"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, r.PaperName,
			f3(r.OneQ[0]), f3(r.OneQ[1]), f3(r.OneQ[2]),
			f3(r.TwoQ[0]), f3(r.TwoQ[1]), f3(r.TwoQ[2]))
	}
	t.Write(cfg.Out)
	return rows
}
