// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Tables 1–3, Figures 3–5), the §4.1.1
// quality study, the Conjecture 1 evidence and the design ablations. It is
// shared by cmd/matchbench and the root testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Config controls experiment sizes and output.
type Config struct {
	// Scale selects instance sizes: "tiny" (CI smoke), "small" (default,
	// minutes for the full suite) or "paper" (close to the paper's sizes
	// where memory allows).
	Scale string
	// Threads is the thread sweep for the speedup experiments.
	Threads []int
	// Runs is how many randomized repetitions the quality tables take
	// their minimum over (the paper uses 10).
	Runs int
	// Seed is the base RNG seed.
	Seed uint64
	// Out receives the formatted report.
	Out io.Writer
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Scale == "" {
		c.Scale = "small"
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8, 16}
	}
	if c.Runs <= 0 {
		c.Runs = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// TimeBest runs f reps times and returns the fastest wall-clock duration —
// the standard way to suppress scheduling noise in speedup measurements.
// Exported so cmd/matchbench's serve experiment shares the exact timing
// policy of the in-package experiments.
func TimeBest(reps int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// Table is a simple fixed-width text table used for all reports.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	var sb strings.Builder
	for i, h := range t.Headers {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", len(strings.TrimRight(sb.String(), " "))))
	for _, row := range t.Rows {
		sb.Reset()
		for i, c := range row {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}
