package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func tinyConfig(out *bytes.Buffer) Config {
	return Config{Scale: "tiny", Threads: []int{1, 2}, Runs: 2, Seed: 1, Out: out}.Defaults()
}

func TestCatalogBuildsAndMatchesClasses(t *testing.T) {
	insts := Catalog("tiny")
	if len(insts) != 12 {
		t.Fatalf("catalog has %d instances, want 12 (one per Table 3 row)", len(insts))
	}
	seen := map[string]bool{}
	for _, inst := range insts {
		if seen[inst.PaperName] {
			t.Fatalf("duplicate analog for %s", inst.PaperName)
		}
		seen[inst.PaperName] = true
		a := inst.Build()
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if a.NNZ() == 0 {
			t.Fatalf("%s: empty instance", inst.Name)
		}
	}
	for _, paper := range []string{"atmosmodl", "audikw_1", "cage15", "channel",
		"europe_osm", "Hamrle3", "hugebubbles", "kkt_power", "nlpkkt240",
		"road_usa", "torso1", "venturiLevel3"} {
		if !seen[paper] {
			t.Fatalf("no analog for %s", paper)
		}
	}
}

func TestCatalogScalesMonotone(t *testing.T) {
	tiny := Catalog("tiny")[0].Build()
	small := Catalog("small")[0].Build()
	if tiny.RowsN >= small.RowsN {
		t.Fatalf("tiny (%d) not smaller than small (%d)", tiny.RowsN, small.RowsN)
	}
}

func TestCatalogRejectsUnknownScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown scale accepted")
		}
	}()
	Catalog("galactic")
}

func TestTable1Tiny(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	rows := Table1(cfg, 256)
	if len(rows) != 5 {
		t.Fatalf("table 1 rows %d want 5", len(rows))
	}
	// The headline claim: at k=32 with 10 iterations, TwoSided beats KS.
	last := rows[len(rows)-1]
	if last.TwoQual[3] <= last.KSQual {
		t.Fatalf("k=32: TwoSided@10it %.3f not better than KS %.3f",
			last.TwoQual[3], last.KSQual)
	}
	// Scaling error decreases with iterations.
	for _, r := range rows {
		if r.ScaleErr[3] >= r.ScaleErr[1] {
			t.Fatalf("k=%d: error did not drop from 1 to 10 iters (%v -> %v)",
				r.K, r.ScaleErr[1], r.ScaleErr[3])
		}
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Fatal("report missing")
	}
}

func TestTable2Tiny(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	rows, rectOne, rectTwo := Table2(cfg, 3000)
	if len(rows) != 16 {
		t.Fatalf("table 2 rows %d want 16 (4 densities x 4 iteration counts)", len(rows))
	}
	// More scaling iterations should not hurt quality much; 10 iters beats
	// 0 iters for every density (the paper's monotone trend).
	for d := 0; d < 4; d++ {
		base := rows[d*4+0]
		best := rows[d*4+3]
		if best.TwoQ < base.TwoQ-0.01 {
			t.Fatalf("d=%d: two-sided quality fell from %.3f (0 it) to %.3f (10 it)",
				base.D, base.TwoQ, best.TwoQ)
		}
	}
	if rectOne <= 0.5 || rectTwo <= rectOne {
		t.Fatalf("rectangular case suspicious: one=%.3f two=%.3f", rectOne, rectTwo)
	}
}

func TestTable3TinySingleInstance(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	inst := Catalog("tiny")[5] // band4: cheap to build and measure
	row := table3One(cfg, inst)
	if row.N == 0 || row.Edges == 0 {
		t.Fatal("empty stats")
	}
	if row.SprankRatio <= 0 || row.SprankRatio > 1 {
		t.Fatalf("sprank ratio %v", row.SprankRatio)
	}
	if row.TScale <= 0 || row.TOneSided <= 0 || row.TKarpSipserMT <= 0 || row.TTwoSided <= 0 {
		t.Fatal("non-positive timings")
	}
	if row.Err10 > row.Err1 {
		t.Fatalf("scaling error rose: %v -> %v", row.Err1, row.Err10)
	}
}

func TestConjectureTinyApproachesTarget(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	rows := Conjecture(cfg, []int{2000, 4000})
	target := ConjectureTarget()
	if math.Abs(target-0.8656) > 0.001 {
		t.Fatalf("conjecture target %v want ≈0.8656", target)
	}
	for _, r := range rows {
		if math.Abs(r.TwoFrac-target) > 0.02 {
			t.Fatalf("n=%d: two-sided fraction %v far from %v", r.N, r.TwoFrac, target)
		}
		if math.Abs(r.OneFrac-(1-1/math.E)) > 0.02 {
			t.Fatalf("n=%d: one-sided fraction %v far from 0.632", r.N, r.OneFrac)
		}
		// KarpSipserMT must equal the true maximum on the 1-out graph.
		if r.TwoFrac != r.TwoIsMaxOf {
			t.Fatalf("n=%d: KarpSipserMT %v != exact %v on 1-out graph",
				r.N, r.TwoFrac, r.TwoIsMaxOf)
		}
	}
}

func TestQualityFITiny(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	rows := QualityFI(cfg, []int{2000})
	if len(rows) != 3 {
		t.Fatalf("rows %d want 3", len(rows))
	}
	for _, r := range rows {
		if r.OneQ < 0.632 {
			t.Fatalf("n=%d extras=%d: one-sided %v below guarantee", r.N, r.Extras, r.OneQ)
		}
		if r.TwoQ < 0.86 {
			t.Fatalf("n=%d extras=%d: two-sided %v below conjecture", r.N, r.Extras, r.TwoQ)
		}
	}
}

func TestAblationScalingTiny(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	rows := AblationScaling(cfg, 3000)
	if len(rows) != 5 {
		t.Fatalf("rows %d", len(rows))
	}
	// At every budget SK's error is no worse than Ruiz's (the §2.2 claim).
	for _, r := range rows {
		if r.SKErr > r.RuizErr+1e-9 {
			t.Fatalf("iters=%d: SK err %v worse than Ruiz %v", r.Iters, r.SKErr, r.RuizErr)
		}
	}
}

func TestFig5TinyQualityAboveGuarantees(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	rows := Fig5(cfg)
	if len(rows) != 12 {
		t.Fatalf("rows %d want 12", len(rows))
	}
	for _, r := range rows {
		// After 5 iterations both heuristics must be within striking
		// distance of their guarantees on every instance (the paper's
		// Figure 5 observation; quality is measured against sprank so
		// deficient instances behave like the rest).
		if r.OneQ[2] < 0.55 {
			t.Fatalf("%s: one-sided@5 %v too low", r.Name, r.OneQ[2])
		}
		if r.TwoQ[2] < 0.80 {
			t.Fatalf("%s: two-sided@5 %v too low", r.Name, r.TwoQ[2])
		}
	}
}

func TestSpeedupHarnessShape(t *testing.T) {
	// Run the Fig3 harness on a single tiny instance to validate plumbing
	// (actual speedups are meaningless at tiny scale).
	var out bytes.Buffer
	cfg := Config{Scale: "tiny", Threads: []int{1, 2}, Runs: 1, Seed: 1, Out: &out}.Defaults()
	inst := Catalog("tiny")[5]
	sRow, oRow := fig3One(cfg, inst)
	if len(sRow.Speedup) != 2 || len(oRow.Speedup) != 2 {
		t.Fatal("fig3 speedup sweep shape wrong")
	}
	if sRow.T1 <= 0 {
		t.Fatal("baseline time missing")
	}
	kRow, tRow := fig4One(cfg, inst)
	if len(kRow.Speedup) != 2 || len(tRow.Speedup) != 2 {
		t.Fatal("fig4 speedup sweep shape wrong")
	}
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	tab := Table{Title: "demo", Headers: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.Write(&buf)
	s := buf.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "333") {
		t.Fatalf("rendering:\n%s", s)
	}
}

func TestWalkupTiny(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	rows := Walkup(cfg, []int{2000})
	if len(rows) != 1 {
		t.Fatal("rows")
	}
	r := rows[0]
	if math.Abs(r.OneOut-0.866) > 0.02 {
		t.Fatalf("1-out fraction %v want ≈0.866", r.OneOut)
	}
	if r.TwoOut != 1 || r.ThreeOut != 1 {
		t.Fatalf("2-out/3-out should be perfect: %v %v", r.TwoOut, r.ThreeOut)
	}
}

func TestUndirectedExtensionTiny(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	rows := Undirected(cfg, 10000)
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Frac < 0.6 || r.Frac > 1.0 {
			t.Fatalf("%s: matched fraction %v out of range", r.Name, r.Frac)
		}
	}
}

func TestAblationKSVariantsTiny(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	rows := AblationKSVariants(cfg, 5000)
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.ExactKSQ <= 0 || r.ApproxKSQ <= 0 || r.TwoQ <= 0 {
			t.Fatalf("%s: degenerate qualities %+v", r.Name, r)
		}
		// On the adversarial instance TwoSided must beat both KS flavors.
		if r.Name == "badks-k32" && (r.TwoQ <= r.ExactKSQ || r.TwoQ <= r.ApproxKSQ) {
			t.Fatalf("badks: TwoSided %v not ahead of KS %v / %v",
				r.TwoQ, r.ExactKSQ, r.ApproxKSQ)
		}
	}
}

func TestConjectureTargetMath(t *testing.T) {
	// rho satisfies rho*e^rho = 1; check the inverse relation.
	rho := 1 - ConjectureTarget()/2
	if math.Abs(rho*math.Exp(rho)-1) > 1e-10 {
		t.Fatalf("rho=%v does not solve x*e^x=1", rho)
	}
}
