package bench

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ks"
	"repro/internal/par"
	"repro/internal/scale"
)

// Table1Row reproduces one row of Table 1: the classic Karp–Sipser quality
// versus TwoSidedMatch at 0, 1, 5 and 10 scaling iterations on the Fig. 2
// adversarial family. Every quality number is the minimum over Config.Runs
// randomized executions, as in the paper.
type Table1Row struct {
	K        int
	KSQual   float64
	Iters    []int     // the iteration counts sampled
	ScaleErr []float64 // scaling error after Iters[i] iterations
	TwoQual  []float64 // min TwoSidedMatch quality at Iters[i]
}

// Table1 runs the experiment. n defaults to the paper's 3200 (pass 0).
func Table1(cfg Config, n int) []Table1Row {
	cfg = cfg.Defaults()
	if n <= 0 {
		n = 3200
	}
	iters := []int{0, 1, 5, 10}
	kvals := []int{2, 4, 8, 16, 32}
	rows := make([]Table1Row, 0, len(kvals))
	for _, k := range kvals {
		a := gen.BadKS(n, k)
		at := a.Transpose()
		row := Table1Row{K: k, Iters: iters}

		// Baseline: classic Karp–Sipser, min quality over runs.
		row.KSQual = 1.0
		for r := 0; r < cfg.Runs; r++ {
			mt, _ := ks.Run(a, at, cfg.Seed+uint64(r))
			if q := float64(mt.Size) / float64(n); q < row.KSQual {
				row.KSQual = q
			}
		}

		// TwoSidedMatch at each scaling-iteration budget.
		for _, it := range iters {
			res, err := scale.SinkhornKnopp(a, at, scale.Options{MaxIters: it})
			if err != nil {
				panic(err)
			}
			row.ScaleErr = append(row.ScaleErr, res.Err)
			worst := 1.0
			for r := 0; r < cfg.Runs; r++ {
				out := core.TwoSided(a, at, res.DR, res.DC, core.Options{
					Policy: par.Dynamic, KSPolicy: par.Guided,
					Seed: cfg.Seed + uint64(r)*7919,
				})
				if q := float64(out.Matching.Size) / float64(n); q < worst {
					worst = q
				}
			}
			row.TwoQual = append(row.TwoQual, worst)
		}
		rows = append(rows, row)
	}
	report1(cfg, n, rows)
	return rows
}

func report1(cfg Config, n int, rows []Table1Row) {
	t := Table{
		Title: "Table 1: KS vs TwoSidedMatch on the hard family (n=" +
			itoa(n) + ", min of " + itoa(cfg.Runs) + " runs)",
		Headers: []string{"k", "KarpSipser",
			"q@0it", "err@1it", "q@1it", "err@5it", "q@5it", "err@10it", "q@10it"},
	}
	for _, r := range rows {
		t.AddRow(itoa(r.K), f3(r.KSQual),
			f3(r.TwoQual[0]),
			f3(r.ScaleErr[1]), f3(r.TwoQual[1]),
			f3(r.ScaleErr[2]), f3(r.TwoQual[2]),
			f3(r.ScaleErr[3]), f3(r.TwoQual[3]))
	}
	t.Write(cfg.Out)
}

func itoa(v int) string { return strconv.Itoa(v) }
