package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/ks"
	"repro/internal/par"
	"repro/internal/scale"
	"repro/internal/sparse"
)

// PerfRecord is one machine-readable data point of the perf experiment:
// a (instance, heuristic, worker-count) cell with its best-of wall clock,
// the matching quality against sprank, and the speedup over the same
// heuristic at one worker. cmd/matchbench serializes these records to
// BENCH_matchbench.json so the performance trajectory of the codebase can
// be compared across commits.
type PerfRecord struct {
	Instance  string  `json:"instance"`
	Edges     int     `json:"edges"`
	Heuristic string  `json:"heuristic"`
	Workers   int     `json:"workers"`
	NsOp      int64   `json:"ns_op"`
	Quality   float64 `json:"quality"`
	Speedup   float64 `json:"speedup_vs_1"`
}

// perfInstances is the subset of the catalog the perf experiment sweeps:
// one mesh, one road network, one power-law instance — small enough to
// keep the experiment in seconds, structured enough to stress static and
// skewed load.
func perfInstances(scale string) []Instance {
	catalog := Catalog(scale)
	want := map[string]bool{"mesh3d7": true, "roadnet21": true, "heavytail": true}
	var out []Instance
	for _, inst := range catalog {
		if want[inst.Name] {
			out = append(out, inst)
		}
	}
	if len(out) == 0 {
		// Catalog names changed; fall back to the first three entries.
		out = catalog[:3]
	}
	return out
}

// Perf measures OneSidedMatch, TwoSidedMatch and the parallel Karp–Sipser
// baseline across the configured thread sweep on a caller-owned worker
// pool, prints the usual table, and returns the records for JSON output.
// Every heuristic call reuses one pool sized to the largest thread count,
// the scaling stage's exported sampling totals, and the paper's
// (dynamic,512)/(guided) schedules.
func Perf(cfg Config) []PerfRecord {
	cfg = cfg.Defaults()
	maxThreads := 1
	for _, th := range cfg.Threads {
		if th > maxThreads {
			maxThreads = th
		}
	}
	pool := par.NewPool(maxThreads)
	defer pool.Close()

	reps := 3
	var records []PerfRecord
	tbl := &Table{
		Title:   "perf: wall clock and quality across the thread sweep",
		Headers: []string{"instance", "edges", "heuristic", "threads", "ms", "quality", "speedup"},
	}
	for _, inst := range perfInstances(cfg.Scale) {
		a := inst.Build()
		at := a.Transpose()
		sprank := exact.Sprank(a)
		for _, h := range []string{"onesided", "twosided", "ksparallel"} {
			// The speedup denominator is always a measured 1-worker run,
			// even when the sweep starts higher — the JSON field promises
			// "vs 1", and mixed thread lists must stay comparable.
			anchor := TimeBest(reps, func() { runHeuristic(h, a, at, cfg.Seed, 1, pool, sprank) })
			for _, th := range cfg.Threads {
				var quality float64
				run := func() {
					quality = runHeuristic(h, a, at, cfg.Seed, th, pool, sprank)
				}
				best := anchor
				if th != 1 {
					best = TimeBest(reps, run)
				} else {
					run() // one extra pass to fill in the quality
				}
				speedup := float64(anchor) / float64(best)
				records = append(records, PerfRecord{
					Instance:  inst.Name,
					Edges:     a.NNZ(),
					Heuristic: h,
					Workers:   th,
					NsOp:      best.Nanoseconds(),
					Quality:   quality,
					Speedup:   speedup,
				})
				tbl.AddRow(inst.Name, fmt.Sprintf("%d", a.NNZ()), h,
					fmt.Sprintf("%d", th), ms(best), f3(quality), f2(speedup))
			}
		}
	}
	tbl.Write(cfg.Out)
	return records
}

// runHeuristic executes one heuristic end to end (scaling included where
// the heuristic uses it) and returns the quality |M|/sprank.
func runHeuristic(h string, a, at *sparse.CSR, seed uint64, workers int, pool *par.Pool, sprank int) float64 {
	switch h {
	case "ksparallel":
		mt := ks.RunApproxPool(a, at, seed, workers, pool)
		return exact.Quality(mt.Size, sprank)
	case "onesided", "twosided":
		sres, err := scale.SinkhornKnopp(a, at, scale.Options{
			MaxIters: 5, Workers: workers, Policy: par.Dynamic, Pool: pool,
		})
		if err != nil {
			panic(err)
		}
		opt := core.Options{
			Workers: workers, Policy: par.Dynamic, Chunk: par.DefaultChunk,
			KSPolicy: par.Guided, Seed: seed, Pool: pool,
			RowTotals: sres.RSum, ColTotals: sres.CSum,
		}
		if h == "onesided" {
			_, size := core.OneSided(a, sres.DR, sres.DC, opt)
			return exact.Quality(size, sprank)
		}
		res := core.TwoSided(a, at, sres.DR, sres.DC, opt)
		return exact.Quality(res.Matching.Size, sprank)
	default:
		panic("bench: unknown heuristic " + h)
	}
}
