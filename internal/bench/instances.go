package bench

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/sparse"
)

// Instance is a synthetic analog of one of the twelve SuiteSparse matrices
// used in Table 3 and Figures 3–5. The analogs match the structural class
// (mesh / road network / power-law / banded / saddle-point), the average
// degree, the degree skew and the sprank deficiency of the originals; see
// DESIGN.md §4 for the substitution rationale.
type Instance struct {
	Name      string // analog name used in reports
	PaperName string // the SuiteSparse matrix it stands in for
	Class     string // structural class
	Build     func() *sparse.CSR
}

// Catalog returns the twelve Table-3 instances at the requested scale.
// Scales: "tiny" for unit tests, "small" for the default benchmark suite,
// "paper" for sizes approaching the original evaluation.
func Catalog(scale string) []Instance {
	f := 1.0
	switch scale {
	case "tiny":
		f = 0.1
	case "small", "":
		f = 1.0
	case "paper":
		f = 3.0
	default:
		panic(fmt.Sprintf("bench: unknown scale %q", scale))
	}
	si := func(base int) int { // scale 1-D sizes
		v := int(float64(base) * f)
		if v < 8 {
			v = 8
		}
		return v
	}
	s3 := func(base int) int { // scale 3-D grid sides by f^(1/3)
		v := int(float64(base) * math.Cbrt(f))
		if v < 4 {
			v = 4
		}
		return v
	}
	s2 := func(base int) int { // scale 2-D grid sides by sqrt(f)
		v := int(float64(base) * math.Sqrt(f))
		if v < 8 {
			v = 8
		}
		return v
	}
	return []Instance{
		{
			Name: "mesh3d7", PaperName: "atmosmodl", Class: "3-D 7-point mesh",
			Build: func() *sparse.CSR { return gen.Grid3D(s3(58), s3(58), s3(58), false) },
		},
		{
			Name: "skewdense", PaperName: "audikw_1", Class: "skewed dense rows (FEM stiffness)",
			Build: func() *sparse.CSR { return gen.PowerLaw(si(60000), 25, 2.5, 4000, 101) },
		},
		{
			Name: "uniform19", PaperName: "cage15", Class: "uniform sparse, deg≈19",
			Build: func() *sparse.CSR { return gen.ERAvgDeg(si(280000), si(280000), 19, 102) },
		},
		{
			Name: "mesh3d27", PaperName: "channel", Class: "3-D 27-point mesh",
			Build: func() *sparse.CSR { return gen.Grid3D(s3(54), s3(54), s3(54), true) },
		},
		{
			Name: "roadnet21", PaperName: "europe_osm", Class: "road network, deg≈2.1",
			Build: func() *sparse.CSR { return gen.RoadLike(si(600000), 2.1, 103) },
		},
		{
			Name: "band4", PaperName: "Hamrle3", Class: "banded circuit matrix",
			Build: func() *sparse.CSR { return gen.Band(si(400000), 0, -1, 1, -300) },
		},
		{
			Name: "mesh2dthin", PaperName: "hugebubbles", Class: "thinned 2-D mesh, deg≈3",
			Build: func() *sparse.CSR { return gen.RoadLike(si(500000), 3.0, 104) },
		},
		{
			Name: "saddle6", PaperName: "kkt_power", Class: "KKT saddle point, deg≈6",
			Build: func() *sparse.CSR { return gen.KKTLike(si(350000), si(80000), 2, 105) },
		},
		{
			Name: "saddle26", PaperName: "nlpkkt240", Class: "KKT saddle point, deg≈26",
			Build: func() *sparse.CSR { return gen.KKTLike(si(120000), si(30000), 11, 106) },
		},
		{
			Name: "roadnet24", PaperName: "road_usa", Class: "road network, deg≈2.4",
			Build: func() *sparse.CSR { return gen.RoadLike(si(600000), 2.4, 107) },
		},
		{
			Name: "heavytail", PaperName: "torso1", Class: "extreme degree variance",
			Build: func() *sparse.CSR { return gen.PowerLaw(si(60000), 15, 1.35, 30000, 108) },
		},
		{
			Name: "mesh2d4", PaperName: "venturiLevel3", Class: "2-D mesh, deg≈4",
			Build: func() *sparse.CSR { return gen.Mesh2D(s2(650), s2(650)) },
		},
	}
}
