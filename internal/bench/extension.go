package bench

import (
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/undirected"
	"repro/internal/xrand"
)

// WalkupRow is one size point of the k-out experiment (paper ref [31]):
// Walkup proved random 1-out bipartite graphs have maximum matchings of
// ≈ 0.866n while 2-out graphs have perfect matchings almost surely.
type WalkupRow struct {
	N        int
	OneOut   float64 // sprank(1-out)/n
	TwoOut   float64 // sprank(2-out)/n
	ThreeOut float64
}

// Walkup measures maximum matchings of k-out graphs for k = 1, 2, 3.
func Walkup(cfg Config, sizes []int) []WalkupRow {
	cfg = cfg.Defaults()
	if len(sizes) == 0 {
		sizes = []int{1000, 4000, 16000}
	}
	var rows []WalkupRow
	for _, n := range sizes {
		row := WalkupRow{N: n}
		row.OneOut = float64(exact.Sprank(gen.KOut(n, 1, cfg.Seed))) / float64(n)
		row.TwoOut = float64(exact.Sprank(gen.KOut(n, 2, cfg.Seed))) / float64(n)
		row.ThreeOut = float64(exact.Sprank(gen.KOut(n, 3, cfg.Seed))) / float64(n)
		rows = append(rows, row)
	}
	t := Table{
		Title:   "Extension: Walkup k-out graphs (1-out -> 0.866, 2-out -> perfect)",
		Headers: []string{"n", "sprank(1-out)/n", "sprank(2-out)/n", "sprank(3-out)/n"},
	}
	for _, r := range rows {
		t.AddRow(itoa(r.N), f3(r.OneOut), f3(r.TwoOut), f3(r.ThreeOut))
	}
	t.Write(cfg.Out)
	return rows
}

// UndirectedRow reports the undirected 1-out heuristic on one graph class.
type UndirectedRow struct {
	Name     string
	N, Edges int
	Matched  int
	Frac     float64 // matched vertices / n
}

// Undirected runs the future-work extension on several graph classes.
func Undirected(cfg Config, n int) []UndirectedRow {
	cfg = cfg.Defaults()
	if n <= 0 {
		n = 200000
	}
	classes := []struct {
		name  string
		build func() *sparse.CSR
	}{
		{"er-d6", func() *sparse.CSR { return symmetricER(n, 6, cfg.Seed) }},
		{"ring", func() *sparse.CSR { return ring(n) }},
		{"mesh2d", func() *sparse.CSR { return gen.Mesh2D(isqrt(n), isqrt(n)) }},
		{"triangles", func() *sparse.CSR { return triangles(n) }},
	}
	var rows []UndirectedRow
	for _, c := range classes {
		a := c.build()
		g, err := undirected.New(a)
		if err != nil {
			panic(err)
		}
		res := g.Match(5, undirected.Options{Policy: par.Dynamic, Seed: cfg.Seed})
		rows = append(rows, UndirectedRow{
			Name: c.name, N: g.N(), Edges: a.NNZ() / 2,
			Matched: res.Size, Frac: 2 * float64(res.Size) / float64(g.N()),
		})
	}
	t := Table{
		Title:   "Extension: undirected 1-out heuristic (conclusion's future work)",
		Headers: []string{"class", "n", "edges", "matched", "2|M|/n"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, itoa(r.N), itoa(r.Edges), itoa(r.Matched), f3(r.Frac))
	}
	t.Write(cfg.Out)
	return rows
}

func symmetricER(n int, avgDeg float64, seed uint64) *sparse.CSR {
	rng := xrand.New(seed)
	m := int(avgDeg * float64(n) / 2)
	entries := make([]sparse.Coord, 0, 2*m)
	for k := 0; k < m; k++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		entries = append(entries, sparse.Coord{I: u, J: v}, sparse.Coord{I: v, J: u})
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic(err)
	}
	return a
}

func ring(n int) *sparse.CSR {
	entries := make([]sparse.Coord, 0, 2*n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		entries = append(entries, sparse.Coord{I: int32(i), J: int32(j)},
			sparse.Coord{I: int32(j), J: int32(i)})
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic(err)
	}
	return a
}

func triangles(n int) *sparse.CSR {
	entries := make([]sparse.Coord, 0, 3*n)
	add := func(u, v int) {
		entries = append(entries, sparse.Coord{I: int32(u), J: int32(v)},
			sparse.Coord{I: int32(v), J: int32(u)})
	}
	for i := 0; i+2 < n; i += 2 {
		add(i, i+1)
		add(i+1, i+2)
		add(i, i+2)
	}
	a, err := sparse.FromCOO(n, n, entries, false)
	if err != nil {
		panic(err)
	}
	return a
}

func isqrt(n int) int {
	x := 1
	for x*x < n {
		x++
	}
	return x
}
