package mmio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the MatrixMarket parser with arbitrary inputs: it
// must never panic, and anything it accepts must round-trip to an
// equivalent matrix.
func FuzzRead(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 3 2\n1 1 0.5\n2 3 -1\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 2\n3 1 4\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n0 0 0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n-1 2 1\n1 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		a, err := Read(strings.NewReader(in))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("accepted invalid matrix: %v", verr)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, a); werr != nil {
			t.Fatalf("cannot re-serialize accepted matrix: %v", werr)
		}
		b, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("cannot re-parse own output: %v", rerr)
		}
		if !a.Equal(b) {
			t.Fatal("round trip changed the matrix")
		}
	})
}
