package mmio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func TestReadPatternGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
% a comment
3 4 3
1 1
2 3
3 4
`
	a, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.RowsN != 3 || a.ColsN != 4 || a.NNZ() != 3 {
		t.Fatalf("parsed %dx%d nnz=%d", a.RowsN, a.ColsN, a.NNZ())
	}
	if a.Val != nil {
		t.Fatal("pattern file produced values")
	}
	if a.Row(1)[0] != 2 {
		t.Fatal("entry (2,3) misplaced")
	}
}

func TestReadRealSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2.0
2 1 -1.0
3 3 4.5
`
	a, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric expansion: (2,1) also gives (1,2).
	if a.NNZ() != 4 {
		t.Fatalf("nnz %d want 4 after expansion", a.NNZ())
	}
	found := false
	for p := a.Ptr[0]; p < a.Ptr[1]; p++ {
		if a.Idx[p] == 1 && a.Val[p] == -1.0 {
			found = true
		}
	}
	if !found {
		t.Fatal("mirrored entry (1,2) missing")
	}
}

func TestReadIntegerField(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer general
2 2 2
1 1 5
2 2 -3
`
	a, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Val == nil || a.Val[0] != 5 {
		t.Fatal("integer values not parsed")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "%%NotMatrixMarket matrix coordinate pattern general\n1 1 0\n",
		"array format":   "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"complex field":  "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad size":       "%%MatrixMarket matrix coordinate pattern general\nnope\n",
		"short entries":  "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n",
		"out of range":   "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n",
		"missing value":  "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1\n",
		"bad value":      "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 xyz\n",
		"bad entry line": "%%MatrixMarket matrix coordinate pattern general\n1 1 1\nfoo\n",
		"skew symmetry":  "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 1.0\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRoundTripPattern(t *testing.T) {
	f := func(seed uint64, d uint8) bool {
		a := gen.ER(40, 50, int(d)%200+1, seed)
		var buf bytes.Buffer
		if err := Write(&buf, a); err != nil {
			return false
		}
		b, err := Read(&buf)
		if err != nil {
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripWeighted(t *testing.T) {
	a, err := sparse.FromCOO(3, 3, []sparse.Coord{
		{I: 0, J: 0, V: 1.5}, {I: 1, J: 2, V: -2.25}, {I: 2, J: 1, V: 1e-30},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("weighted round trip changed matrix")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.mtx")
	a := gen.ERAvgDeg(100, 100, 3, 7)
	if err := WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("file round trip changed matrix")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.mtx")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestHeaderCaseInsensitive(t *testing.T) {
	in := "%%MatrixMarket MATRIX Coordinate Pattern GENERAL\n1 1 1\n1 1\n"
	if _, err := Read(strings.NewReader(in)); err != nil {
		t.Fatalf("case-insensitive header rejected: %v", err)
	}
}
