// Package mmio reads and writes Matrix Market coordinate files, the
// interchange format of the SuiteSparse collection the paper evaluates on.
// Supported: matrix coordinate {pattern|real|integer} {general|symmetric}.
// Values are kept when present; symmetric inputs are expanded to general
// form, since the matching algorithms work on the full pattern.
package mmio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// ErrFormat reports an unsupported or malformed Matrix Market file.
var ErrFormat = errors.New("mmio: bad MatrixMarket file")

// Read parses a Matrix Market stream into a CSR.
func Read(r io.Reader) (*sparse.CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty input", ErrFormat)
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("%w: bad header %q", ErrFormat, sc.Text())
	}
	format, field, symmetry := header[2], header[3], header[4]
	if format != "coordinate" {
		return nil, fmt.Errorf("%w: only coordinate format supported, got %q", ErrFormat, format)
	}
	switch field {
	case "pattern", "real", "integer":
	default:
		return nil, fmt.Errorf("%w: unsupported field %q", ErrFormat, field)
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("%w: unsupported symmetry %q", ErrFormat, symmetry)
	}

	// Size line (skipping comments).
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("%w: missing size line", ErrFormat)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("%w: bad size line %q", ErrFormat, line)
		}
		break
	}
	weighted := field != "pattern"
	entries := make([]sparse.Coord, 0, nnz)
	read := 0
	for read < nnz {
		if !sc.Scan() {
			return nil, fmt.Errorf("%w: expected %d entries, got %d", ErrFormat, nnz, read)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("%w: bad entry line %q", ErrFormat, line)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: bad entry line %q", ErrFormat, line)
		}
		v := 1.0
		if weighted {
			if len(f) < 3 {
				return nil, fmt.Errorf("%w: missing value on %q", ErrFormat, line)
			}
			var err error
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad value on %q", ErrFormat, line)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("%w: entry (%d,%d) outside %dx%d", ErrFormat, i, j, rows, cols)
		}
		entries = append(entries, sparse.Coord{I: int32(i - 1), J: int32(j - 1), V: v})
		if symmetry == "symmetric" && i != j {
			entries = append(entries, sparse.Coord{I: int32(j - 1), J: int32(i - 1), V: v})
		}
		read++
	}
	return sparse.FromCOO(rows, cols, entries, weighted)
}

// ReadFile reads a Matrix Market file from disk.
func ReadFile(path string) (*sparse.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write emits a in Matrix Market coordinate format (pattern if a.Val is
// nil, real otherwise; always general symmetry).
func Write(w io.Writer, a *sparse.CSR) error {
	field := "pattern"
	if a.Val != nil {
		field = "real"
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate %s general\n", field); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.RowsN, a.ColsN, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.RowsN; i++ {
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			if a.Val == nil {
				if _, err := fmt.Fprintf(bw, "%d %d\n", i+1, a.Idx[p]+1); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, a.Idx[p]+1, a.Val[p]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes a to a Matrix Market file on disk.
func WriteFile(path string, a *sparse.CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
