package bipartite

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dm"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/ks"
	"repro/internal/mmio"
	"repro/internal/sparse"
)

// Matching pairs rows with columns: RowMate[i] is the column matched to
// row i (or -1), ColMate[j] the row matched to column j (or -1), and Size
// the cardinality.
type Matching = exact.Matching

// KarpSipserStats reports how a classic Karp–Sipser run unfolded
// (degree-one rule matches vs random picks).
type KarpSipserStats = ks.Stats

// DMDecomposition is the coarse Dulmage–Mendelsohn decomposition returned
// by Graph.DulmageMendelsohn.
type DMDecomposition = dm.Coarse

// Unmatched is the sentinel used in matching and choice arrays.
const Unmatched = exact.NIL

// Graph is a bipartite graph stored as the sparse pattern of its
// biadjacency matrix. The zero value is not usable; construct with one of
// the constructors or generators. A Graph is immutable after construction;
// all methods are safe for concurrent use (the lazy transpose and sprank
// caches are synchronized — batch serving builds them from pool workers).
type Graph struct {
	a      *sparse.CSR
	atOnce sync.Once
	at     *sparse.CSR // transpose, built lazily under atOnce

	sprank   atomic.Int64 // cached maximum matching size + 1; 0 until computed
	sprankUB atomic.Int64 // cached structural upper bound + 1; 0 until computed
}

func newGraph(a *sparse.CSR) *Graph { return &Graph{a: a} }

// NewGraph builds a graph from raw CSR components: ptr has length rows+1,
// idx holds the column index of each edge. The input is validated and the
// rows are sorted if needed.
func NewGraph(rows, cols int, ptr []int, idx []int32) (*Graph, error) {
	a, err := sparse.New(rows, cols, ptr, idx, nil)
	if err != nil {
		return nil, err
	}
	if !a.HasSortedRows() {
		a.SortRows()
	}
	return newGraph(a), nil
}

// FromEdges builds a graph from an edge list; duplicate edges are merged.
func FromEdges(rows, cols int, edges [][2]int) (*Graph, error) {
	coords := make([]sparse.Coord, len(edges))
	for k, e := range edges {
		if e[0] < 0 || e[0] >= rows || e[1] < 0 || e[1] >= cols {
			return nil, fmt.Errorf("bipartite: edge (%d,%d) outside %dx%d", e[0], e[1], rows, cols)
		}
		coords[k] = sparse.Coord{I: int32(e[0]), J: int32(e[1])}
	}
	a, err := sparse.FromCOO(rows, cols, coords, false)
	if err != nil {
		return nil, err
	}
	return newGraph(a), nil
}

// ReadMatrixMarket loads a graph from a Matrix Market coordinate file.
func ReadMatrixMarket(path string) (*Graph, error) {
	a, err := mmio.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return newGraph(a), nil
}

// WriteMatrixMarket stores the graph's pattern in Matrix Market format.
func (g *Graph) WriteMatrixMarket(path string) error {
	return mmio.WriteFile(path, g.a)
}

// --- generators -----------------------------------------------------------

// RandomER returns an Erdős–Rényi random graph with the given shape and
// average row degree (Matlab sprand-style, as in the paper's §4.1.3).
func RandomER(rows, cols int, avgDeg float64, seed uint64) *Graph {
	return newGraph(gen.ERAvgDeg(rows, cols, avgDeg, seed))
}

// Complete returns the complete bipartite graph K_{n,n} (the all-ones
// matrix of Conjecture 1).
func Complete(n int) *Graph { return newGraph(gen.Full(n)) }

// HardForKarpSipser returns the Fig. 2 adversarial family: Karp–Sipser's
// quality degrades as k grows while TwoSidedMatch is unaffected.
func HardForKarpSipser(n, k int) *Graph { return newGraph(gen.BadKS(n, k)) }

// Grid2D returns the 5-point stencil graph of an nx×ny mesh.
func Grid2D(nx, ny int) *Graph { return newGraph(gen.Grid2D(nx, ny)) }

// Grid3D returns the 7-point (or dense 27-point) stencil graph of an
// nx×ny×nz mesh.
func Grid3D(nx, ny, nz int, full27 bool) *Graph { return newGraph(gen.Grid3D(nx, ny, nz, full27)) }

// RoadNetwork returns a road-network-like thinned grid with the given
// average degree (slightly rank-deficient, like europe_osm/road_usa).
func RoadNetwork(n int, avgDeg float64, seed uint64) *Graph {
	return newGraph(gen.RoadLike(n, avgDeg, seed))
}

// PowerLaw returns a graph with Pareto(dmin, alpha) row degrees.
func PowerLaw(n int, dmin, alpha float64, maxDeg int, seed uint64) *Graph {
	return newGraph(gen.PowerLaw(n, dmin, alpha, maxDeg, seed))
}

// Banded returns a banded pattern with the given diagonal offsets.
func Banded(n int, offsets ...int) *Graph { return newGraph(gen.Band(n, offsets...)) }

// FullyIndecomposable returns a matrix with total support (identity +
// cyclic shift + extras random entries per row), the §4.1.1 workload.
func FullyIndecomposable(n, extras int, seed uint64) *Graph {
	return newGraph(gen.FullyIndecomposable(n, extras, seed))
}

// SaddlePoint returns a KKT-structured symmetric pattern [[A B];[Bᵀ 0]].
func SaddlePoint(nA, nB, extra int, seed uint64) *Graph {
	return newGraph(gen.KKTLike(nA, nB, extra, seed))
}

// --- accessors ------------------------------------------------------------

// Rows returns |VR|, the number of row vertices.
func (g *Graph) Rows() int { return g.a.RowsN }

// Cols returns |VC|, the number of column vertices.
func (g *Graph) Cols() int { return g.a.ColsN }

// Edges returns the number of edges.
func (g *Graph) Edges() int { return g.a.NNZ() }

// Degree returns the degree of row vertex i.
func (g *Graph) Degree(i int) int { return g.a.Degree(i) }

// AvgDegree returns the mean row degree.
func (g *Graph) AvgDegree() float64 { return g.a.AvgDegree() }

// DegreeVariance returns the row-degree variance (the load-imbalance
// indicator discussed with Table 3).
func (g *Graph) DegreeVariance() float64 { return g.a.DegreeVariance() }

// Neighbors returns the column neighbors of row i (shared slice; do not
// modify).
func (g *Graph) Neighbors(i int) []int32 { return g.a.Row(i) }

// HasEdge reports whether edge (i, j) is present.
func (g *Graph) HasEdge(i, j int) bool {
	row := g.a.Row(i)
	k := sort.Search(len(row), func(k int) bool { return row[k] >= int32(j) })
	return k < len(row) && row[k] == int32(j)
}

// CSR exposes the underlying matrix components (ptr, idx) for zero-copy
// interop. The returned slices must not be modified.
func (g *Graph) CSR() (rows, cols int, ptr []int, idx []int32) {
	return g.a.RowsN, g.a.ColsN, g.a.Ptr, g.a.Idx
}

func (g *Graph) transpose() *sparse.CSR {
	g.atOnce.Do(func() { g.at = g.a.Transpose() })
	return g.at
}

// --- exact matching and analysis -------------------------------------------

// MaximumMatching computes a maximum-cardinality matching with
// Hopcroft–Karp.
func (g *Graph) MaximumMatching() *Matching { return exact.HopcroftKarp(g.a, nil) }

// MaximumMatchingPushRelabel computes a maximum matching with the
// push-relabel/auction scheme (the algorithm family of the GPU and
// multicore maximum-transversal codes the paper cites). init may be nil
// or a warm-start matching.
func (g *Graph) MaximumMatchingPushRelabel(init *Matching) *Matching {
	return exact.PushRelabel(g.a, init)
}

// MaximumMatchingFrom completes the given partial matching to a maximum
// one (MC21 augmentation) and reports how many rows the warm start had
// left free — the jump-start metric of the introduction.
func (g *Graph) MaximumMatchingFrom(init *Matching) (*Matching, int) {
	return exact.Augment(g.a, init)
}

// Sprank returns the maximum matching cardinality (structural rank),
// caching the result. Concurrent first calls may each compute it; they
// agree, and later calls hit the cache.
func (g *Graph) Sprank() int {
	if v := g.sprank.Load(); v > 0 {
		return int(v - 1)
	}
	s := exact.Sprank(g.a)
	g.sprank.Store(int64(s) + 1)
	return s
}

// SprankUpperBound returns a cheap structural upper bound on Sprank():
// the number of non-isolated rows or columns, whichever is smaller —
// an O(rows+cols) count, versus the exact run Sprank costs. It is always
// the structural bound, even when the exact Sprank is already cached:
// Spec.Target uses it as the denominator of the ensemble early-stop
// threshold, and a threshold that tightened whenever somebody happened to
// have called Sprank would make ensemble winners depend on unrelated
// history instead of on (Graph, Spec, Options) alone.
func (g *Graph) SprankUpperBound() int {
	if v := g.sprankUB.Load(); v > 0 {
		return int(v - 1)
	}
	rows := 0
	for i := 0; i < g.a.RowsN; i++ {
		if g.a.Degree(i) > 0 {
			rows++
		}
	}
	at := g.transpose()
	cols := 0
	for j := 0; j < at.RowsN; j++ {
		if at.Degree(j) > 0 {
			cols++
		}
	}
	ub := rows
	if cols < ub {
		ub = cols
	}
	g.sprankUB.Store(int64(ub) + 1)
	return ub
}

// MinimumVertexCover extracts a minimum vertex cover from a maximum
// matching via König's theorem. Its size always equals the maximum
// matching cardinality, which makes it an independent certificate of
// optimality (see CertifyMaximum).
func (g *Graph) MinimumVertexCover(mt *Matching) (rowInCover, colInCover []bool, size int) {
	return exact.MinVertexCover(g.a, mt)
}

// CertifyMaximum reports whether mt is provably a maximum matching of g,
// by checking validity and that the König cover built from it has exactly
// mt.Size vertices and covers every edge.
func (g *Graph) CertifyMaximum(mt *Matching) bool {
	return exact.Certify(g.a, mt)
}

// DulmageMendelsohn computes the coarse Dulmage–Mendelsohn decomposition.
func (g *Graph) DulmageMendelsohn() *DMDecomposition {
	return dm.Decompose(g.a, g.transpose(), nil)
}

// FineDecomposition refines the square part of the coarse decomposition
// into fully indecomposable blocks; it returns the block id of each S-row
// (-1 outside S) and the number of blocks.
func (g *Graph) FineDecomposition(c *DMDecomposition) (blockOfRow []int32, blocks int) {
	return c.Fine(g.a)
}

// ErrInvalidMatching reports a matching that is inconsistent with the
// graph.
var ErrInvalidMatching = errors.New("bipartite: invalid matching")

// ValidateMatching checks that m is a valid matching of g: mutually
// consistent mates, every matched pair an actual edge, size correct.
func (g *Graph) ValidateMatching(m *Matching) error {
	if len(m.RowMate) != g.Rows() || len(m.ColMate) != g.Cols() {
		return fmt.Errorf("%w: shape mismatch", ErrInvalidMatching)
	}
	size := 0
	for i, j := range m.RowMate {
		if j == Unmatched {
			continue
		}
		if j < 0 || int(j) >= g.Cols() {
			return fmt.Errorf("%w: row %d matched to out-of-range column %d", ErrInvalidMatching, i, j)
		}
		if m.ColMate[j] != int32(i) {
			return fmt.Errorf("%w: row %d -> col %d but col %d -> row %d", ErrInvalidMatching, i, j, j, m.ColMate[j])
		}
		if !g.HasEdge(i, int(j)) {
			return fmt.Errorf("%w: matched pair (%d,%d) is not an edge", ErrInvalidMatching, i, j)
		}
		size++
	}
	for j, i := range m.ColMate {
		if i != Unmatched && m.RowMate[i] != int32(j) {
			return fmt.Errorf("%w: col %d -> row %d but row %d -> col %d", ErrInvalidMatching, j, i, i, m.RowMate[i])
		}
	}
	if size != m.Size {
		return fmt.Errorf("%w: size %d but %d matched rows", ErrInvalidMatching, m.Size, size)
	}
	return nil
}

// Quality returns |m| / sprank(g), the metric reported throughout the
// paper's evaluation.
func (g *Graph) Quality(m *Matching) float64 {
	return exact.Quality(m.Size, g.Sprank())
}
