// Package bipartite implements randomized bipartite matching heuristics
// with quality guarantees for shared-memory parallel execution,
// reproducing Dufossé, Kaya and Uçar, "Bipartite matching heuristics with
// quality guarantees on shared memory parallel computers" (Inria RR-8386 /
// IPDPS 2014).
//
// # Overview
//
// The library computes large bipartite matchings with two heuristics that
// scale the adjacency matrix to doubly stochastic form (Sinkhorn–Knopp)
// and use the scaled entries as sampling densities:
//
//   - OneSidedMatch: every row samples one column; no synchronization at
//     all; guaranteed ≥ (1 − 1/e) ≈ 0.632 of the maximum matching.
//   - TwoSidedMatch: rows and columns both sample, and the resulting
//     "1-out" graph is matched exactly by a specialized parallel
//     Karp–Sipser kernel; conjectured (and experimentally confirmed)
//     ≥ 2(1 − ρ) ≈ 0.866 of the maximum, where ρ solves x·eˣ = 1.
//
// Exact algorithms (Hopcroft–Karp, MC21), the classic Karp–Sipser
// heuristic, cheap 1/2-approximation baselines, Dulmage–Mendelsohn
// decomposition, Matrix Market I/O and a collection of workload
// generators round out the toolkit.
//
// # Quick start
//
//	g := bipartite.RandomER(100000, 100000, 4.0, 42)
//	res, _ := g.TwoSidedMatch(nil)          // defaults: 5 scaling iters, all cores
//	max := g.Sprank()                       // exact maximum for comparison
//	fmt.Printf("matched %d of %d (quality %.3f)\n",
//		res.Matching.Size, max, float64(res.Matching.Size)/float64(max))
//
// # Execution model
//
// Every parallel stage — scaling sweeps, sampling, both Karp–Sipser
// phases — is dispatched to a persistent pool of parked workers rather
// than to freshly spawned goroutines, so the dozens of parallel regions
// inside one matching call cost a channel handoff each instead of a
// goroutine spawn. By default the stages share one process-wide pool
// sized to GOMAXPROCS; servers that want isolation or a width cap create
// a Pool explicitly and pass it via Options.Pool — one warm worker set
// then serves any number of concurrent matching calls.
//
// The Sinkhorn–Knopp stage runs a fused loop that touches the matrix
// twice per iteration instead of three times (the convergence-error sweep
// is folded into the next column pass) and hands its final row/column
// sums to the sampling stage, which therefore draws each edge with a
// single prefix walk instead of a sum pass plus a walk pass. The fusion
// is exact: reported errors, scaling vectors and sampled choices are
// bit-identical to the textbook formulation.
//
// Determinism contract, for a fixed Options.Seed: the sampled choices
// (hence TwoSidedMatch's 1-out graph), the scaling vectors and the
// matching size are identical for every worker count, scheduling policy
// and pool width. With Workers: 1 the entire matching is deterministic,
// bit for bit. At parallel widths the specific pairing may vary between
// runs — OneSidedMatch's last-write-wins winner and the Karp–Sipser
// kernel's CAS claim order are scheduling-dependent — while the size
// stays fixed (the kernel always returns a maximum matching of the
// deterministic 1-out graph). All heuristics are free of data races at
// any level of parallelism; callers that need reproducible matchings, not
// just reproducible sizes, run with Workers: 1 (as the batch layer below
// does per request).
//
// # The Spec engine
//
// Every matching request in the library is one declarative value, Spec:
// which Algorithm to run (TwoSided, OneSided, the Karp–Sipser variants,
// the cheap baselines), under which Seed, whether to run a best-of-K
// Ensemble of seeds (and whether its candidates fan out across the pool
// or run Sequentially), whether to Refine the heuristic result toward a
// maximum matching, and an optional early-stop Target. One engine —
// Matcher.Run — executes Specs; it is the only code path in the package
// that dispatches matching kernels. Everything else is a surface over it:
//
//   - Graph.Match(spec, opt) runs one Spec on a throwaway session.
//   - Matcher.Run(spec) runs Specs on a warm session (cached scaling,
//     resident workspaces).
//   - Request.Spec carries Specs through MatchBatch and Server.
//   - cmd/matchserve accepts the spec fields ("algorithm", "seed",
//     "refine", "best_of", "target", "sequential") on /match and
//     /match/batch, and reports the result's provenance ("winner_seed",
//     "candidates_run", "heuristic_size", "refined") in every response.
//
// The legacy entry points — OneSidedMatch, TwoSidedMatch, KarpSipser,
// KarpSipserParallel, CheapRandomEdge/Vertex, and the batch layer's
// deprecated Request.Op — survive as compatibility shims: each is a thin
// wrapper over the equivalent Spec and returns bit-identical results at
// the same options and seed (gated by the Spec conformance suite).
//
// Ensemble: K consumes K candidate seeds strictly in seed order over ONE
// shared scaling and keeps the largest matching, ties broken toward the
// smallest seed. On a session wider than one worker the candidates fan
// out across the pool — each candidate runs at width 1 on a per-worker
// arena — which makes the whole ensemble deterministic at any pool width
// and bit-identical to the sequential sweep at Workers: 1 (gated under
// the race detector in CI); Spec.Sequential forces the old
// one-arena-in-series schedule. Target stops the sweep as soon as the
// best candidate reaches Target·SprankUpperBound().
//
// Refine: RefineExact is the paper's central application (§4): the
// heuristic matching jump-starts an exact augmenting-path engine, which
// only pays for the rows the heuristic left free, and a refined single
// run always satisfies size == Sprank(). Three engines share that
// contract. Hopcroft–Karp is the sequential reference. RefinePushRelabel
// is the push-relabel/auction scheme of the GPU and multicore
// maximum-transversal codes the paper cites. RefineGraft is the parallel
// engine — a multi-source BFS with tree grafting in the style of Azad et
// al.'s MS-BFS-Graft, which grows one alternating forest per exposed row
// across the Matcher's pool and commits augmenting paths in a fixed
// deterministic order, so its result is bit-identical at every pool
// width (gated under the race detector in CI). RefineExact auto-selects
// the graft engine on large instances (where refinement dominates
// end-to-end time) and MatchResult.RefinedWith reports the engine that
// actually ran. Inside an ensemble the refinement is ensemble-aware: it
// advances incrementally (one engine phase, or one push-relabel bid
// budget, per consumed candidate), warm-starts from the best heuristic so
// far, and stops the ensemble the moment the refined size reaches the
// Target or structural sprank bound — jump-start workloads stop paying
// for candidates the refinement has already made redundant:
//
//	res, _ := g.Match(bipartite.Spec{
//		Algorithm: bipartite.AlgTwoSided,
//		Ensemble:  8,           // seeds 1..8, one scaling, pool-parallel
//		Target:    0.95,        // stop early once 0.95·sprank-bound is met
//		Refine:    bipartite.RefineExact, // augment incrementally
//	}, nil)
//	// res.WinnerSeed, res.Candidates, res.HeuristicSize and res.Refined
//	// report how the ensemble unfolded; with no Target the refined size
//	// is exactly g.Sprank().
//
// # Weighted matching
//
// Graphs can carry strictly positive, finite edge weights —
// NewWeightedGraph and FromWeightedEdges attach them at construction,
// ReadMatrixMarket keeps the values of real/integer files, and
// RandomWeights decorates any pattern with a seeded synthetic assignment
// (uniform or heavy-tailed). Spec{Algorithm: AlgAuction} then maximizes
// matched WEIGHT instead of cardinality, via an ε-scaling auction
// (Bertsekas' algorithm, parallel Jacobi bidding rounds with serial
// reconciliation) with an explicit approximation contract:
//
//	res, _ := g.Match(bipartite.Spec{
//		Algorithm: bipartite.AlgAuction,
//		Epsilon:   0.05, // 0 = DefaultEpsilon
//	}, nil)
//	// res.MatchedWeight ≥ (1−ε)·optimal matched weight, always.
//	// res.MatchedWeight/res.DualBound certifies this run's true ratio.
//
// Spec.Epsilon in (0,1) trades quality for speed: the final bidding phase
// runs at absolute slack ε·Wmax/min(n,m), so the matched weight is within
// (1−ε) of optimal; smaller ε means more bidding rounds. Every result
// also reports DualBound, the value Σp + Σr of a feasible LP dual built
// from the final prices — an upper bound on the optimum, tight to within
// |M|·ε_abs of the achieved weight — so MatchedWeight/DualBound is a
// per-run quality certificate at any instance size, no exact solve
// needed. Provenance (MatchedWeight, Epsilon, Rounds, DualBound) flows
// through MatchBatch Responses and cmd/matchserve's "matched_weight",
// "epsilon" and "rounds" JSON fields. Pattern graphs degrade gracefully:
// every edge weighs 1.0 and the auction maximizes cardinality.
//
// The auction composes with the Spec machinery it shares with the
// cardinality algorithms. Ensemble: K runs a best-of-K sweep over bidding
// seeds — the coarse ε-scaling phases run ONCE into a shared price warm
// start, each candidate finishes from a clone of it with its own seeded
// tie-breaking, and the heaviest matching wins (ties toward the smallest
// seed). Candidates fan out across the session pool at width 1 each, so
// the winner is bit-identical at any pool width — the same determinism
// contract as the cardinality ensembles, gated in CI at widths 1/2/4
// under the race detector. Refine and Target are rejected by Validate:
// they speak cardinality, not weight. Dynamic sessions extend to weighted
// graphs too: a DynSession opened with AlgAuction maintains the weighted
// matching under ApplyWeighted batches (weighted inserts, deletions,
// weight updates) by re-normalizing prices around what the batch
// disturbed and re-auctioning only the freed rows, preserving the (1−ε)
// bound at the session's creation-time slack after every batch.
//
// Sampling-based heuristics can opt into Walker alias tables
// (Options.AliasSampling) for O(1) weighted draws per sample; the tables
// build lazily per graph and invalidate with the scaling, trading one
// O(nnz) build for constant-time draws in seed sweeps.
//
// # Sessions and serving
//
// The one-shot calls are thin wrappers over a Matcher, a reusable session
// bound to one graph. A Matcher caches the transpose and the
// (seed-independent) scaling and owns preallocated workspaces for every
// pipeline stage, so repeated calls on the same graph — seed sweeps,
// jump-start ensembles, servers — skip the scaling stage entirely and run
// the kernels with near-zero allocations, bit-identical to the one-shot
// results:
//
//	m := g.NewMatcher(&bipartite.Options{ScalingIterations: 5})
//	for seed := uint64(1); seed <= 100; seed++ {
//		res, _ := m.TwoSided(seed)   // no rescaling, no reallocation
//		consume(res.Matching)        // valid until the next call on m
//	}
//	m.Reset(next)                        // rebind, reusing the buffers
//
// Prefer a Matcher over one-shot calls whenever the same graph (or a
// stream of same-shaped graphs) is matched more than once; results alias
// the session and must be copied if retained across calls (RefineExact
// results are the exception: they are freshly allocated).
//
// # Dynamic sessions
//
// A DynSession is the online form of a Matcher: a mutable graph session
// that absorbs batched edge mutations and maintains its matching
// incrementally instead of recomputing it. Open one with
// Graph.NewDynSession(spec, opt) or Matcher.Dyn(spec) — the Spec runs
// once to establish the initial matching — then feed it
// Apply(inserts, deletes) batches:
//
//	sess, _ := g.NewDynSession(bipartite.Spec{Refine: bipartite.RefineExact}, nil)
//	res, _ := sess.Apply([][2]int{{3, 7}}, [][2]int{{0, 0}})
//	// res.Freed, res.Augments, res.Rescaled, res.MaintainedSize report
//	// how the repair unfolded; sess.Size() == sess.Snapshot().Sprank().
//
// A batch is atomic: deletions apply before insertions, and a batch
// naming an out-of-range vertex is rejected whole with
// ErrInvalidMutation, leaving the session untouched. Repair is targeted
// at what the batch disturbed — a deleted matched edge un-matches its
// pair and re-augments from the freed endpoints; an inserted edge
// augments only when it touches an exposed vertex. Sessions whose Spec
// carries a refinement stay exact: the repair completes with
// warm-started augmenting-path phases, so the maintained size equals the
// mutated graph's sprank after every batch (the differential fuzz suite
// gates this over adversarial mutation traces). Heuristic sessions
// (Refine: None) stop at the targeted repair and keep the heuristic's
// quality profile; the Sinkhorn–Knopp scaling stays warm via touch-up
// sweeps restricted to the rows and columns each batch touched.
//
// The determinism contract is strict: every internal kernel runs at
// parallel width 1, so the maintained matching is a pure function of
// (initial graph, Spec, Options.Seed, mutation trace) — bit-identical
// whatever pool or worker settings the Options carry, gated under the
// race detector at pool widths 1/2/4.
//
// Snapshot() bridges back to the immutable world: it returns a cached
// *Graph of the current adjacency, rebuilt only after a batch that
// actually changed the graph. Matching-neutral batches return the
// identical pointer, which is the coherence signal serving layers use —
// cmd/matchserve keys its shared-scaling cache on snapshot identity and
// calls Server.DropGraph on the old snapshot exactly when PATCH swaps
// in a new one.
//
// For many small independent requests, MatchBatch executes a whole queue
// as one pool-wide parallel region — one dispatch for N requests, one warm
// Matcher arena per worker slot, each request served sequentially so its
// response is a deterministic function of (Graph, Spec) alone. Server
// wraps the same engine in a long-lived collector loop that drains
// concurrent submitters into batches (the arenas stay warm across
// batches), and cmd/matchserve exposes it over HTTP/JSON; responses are
// caller-owned copies. See examples/server for the three tiers side by
// side.
//
// # Serving contract
//
// The batch layer is production-shaped, and its guarantees are explicit:
//
//   - Back-pressure: a Server's admission queue is bounded
//     (ServerConfig.Queue). A submission that finds it full fails fast
//     with ErrOverloaded — no unbounded backlog, no blocking submitters,
//     no goroutine per request. Rejections are counted in
//     ServerStats.Rejected.
//   - Deadlines: Request.Ctx carries per-request cancellation. An
//     already-expired context is answered with its error before any
//     kernel runs; one that expires mid-run aborts the sampling and
//     Karp–Sipser stages at their next cooperative checkpoint (chunk
//     granularity) and the response carries ctx.Err(). One exception is
//     deliberate: the shared per-graph scaling below is not cancellable —
//     it is bounded work (a fixed handful of sweeps) owned by every
//     future request of the graph, so a request whose deadline expires
//     during a cold graph's scaling waits that scaling out before being
//     answered with its context error. A nil Ctx never cancels.
//   - Shared scaling: the engine computes one scaling per *Graph in a
//     per-graph once-cell shared by all W batch slots — not one per slot —
//     and recycles per-slot arenas by graph shape under heterogeneous
//     traffic. Scalings are seed-independent and width-independent, so
//     sharing is invisible in the responses; ensemble requests reuse the
//     same cell for every candidate. Server.DropGraph evicts a graph's
//     cached scaling when an upstream registry evicts the graph, tying
//     the two lifetimes together.
//   - Retryable cold scaling: a cancellation that lands while a request
//     is computing a cold graph's shared scaling does not poison the
//     graph. The canceled request is answered with its context error and
//     the scaling cell is left retryable — the next request on the graph
//     computes the scaling under its own deadline (still exactly one
//     scaling run on a successful retry).
//   - Determinism unchanged: every response remains a function of
//     (Graph, Spec, Options) only — bit-identical to the one-shot
//     call at Workers: 1 — however requests are batched, canceled
//     neighbors included. When self-protection rewrites a Spec (below),
//     the response is that same deterministic function of the rewritten
//     Spec, and the rewrite is stamped in the response.
//
// # Self-protection
//
// A Server can watch its own process and protect its latency instead of
// degrading arbitrarily under overload. ServerConfig.Watchdog (CPU/RSS
// limits, sampling interval) starts a watchdog that samples the process's
// CPU fraction and resident set and drives a four-level shedding ladder —
// nominal, degraded, shedding, critical — with hysteresis: levels rise
// immediately when utilization crosses a threshold and decay one step per
// settle period of calm samples, so the server does not flap at a
// boundary. Server.Health exposes the current level and readings.
//
// Admission is priority-aware. Request.Priority (low, normal, high) feeds
// the ladder: at shedding level, low-priority requests are refused; at
// critical, everything below high is refused. Refusals fail fast with a
// *ShedError wrapping ErrShed and carrying a RetryAfter hint (the time
// the ladder needs to decay). Optional per-client token buckets
// (ServerConfig.RatePerClient/RateBurst, keyed by Request.Client) answer
// the greedy client with *RateLimitError/ErrRateLimited and its own
// RetryAfter, before shedding has to punish everyone.
//
// Deadlines are checked against reality at admission: the engine keeps a
// per-(graph, Spec-class) EWMA of observed service times, and a request
// whose remaining context budget cannot cover the estimated queue wait
// plus service time is refused immediately with *WouldMissError wrapping
// ErrWouldMiss — the caller gets its rejection while the deadline is
// still useful, instead of a 504 after burning a slot.
//
// Between serving everything and refusing, the engine degrades: from the
// degraded level upward, admitted Specs are rewritten to their cheaper
// shape — exact refinement is dropped first, then ensemble fan-out is
// capped (K ≤ 2 when degraded, 1 when shedding). A degraded matching
// still carries the paper's heuristic guarantee — OneSided ≥ (1−1/e)·
// sprank, TwoSided ≈ 0.866·sprank in the mean — it only loses what the
// full Spec would have added. Every rewrite is stamped into
// MatchResult.Degraded / Response.Degraded (e.g.
// "refine:exact->none,best_of:8->2"), so provenance survives end to end:
// cmd/matchserve forwards it as the "degraded" response field, and
// ServerStats counts shed, rate-limited, would-miss and degraded
// requests.
//
// Callers that batch through MatchBatch without running a Server get the
// same protection from a Batcher: NewBatcher wraps the batch engine with
// an optional watchdog (BatcherConfig.Watchdog) and applies the
// identical priority shed rules and degradation ladder per batch, so
// embedding applications under mutation or query load shed and degrade
// exactly like the serving path does.
//
// # Cluster serving
//
// Above the single process, the serving stack scales out to a fleet:
// internal/ring is a bounded-load consistent-hash ring (64-bit hashed
// virtual nodes, per-node capacity ⌈factor·K/N⌉, deterministic
// placement and minimal rebalancing — a membership change moves only the
// keys whose arc changed hands), internal/cluster is the routing SDK and
// HTTP front end over it, and cmd/matchrouter is the deployable router
// binary. Registered graphs shard across matchserve replicas by id;
// /match, /match/batch and PATCH traffic routes to the owner; membership
// follows the replicas' /healthz (active probes plus passive mark-down
// on transport failure), and graphs migrate to their new owners lazily —
// exported from a live holder, or replayed from the retained
// registration when the sole holder died.
//
// The router absorbs the serving contract's failure surface on the
// client's behalf: 503/429 rejections are retried with exponential
// backoff plus jitter, floored at the replica's own Retry-After hint;
// slow single matches are hedged against a second holder after a
// p99-derived delay (safe because a response is a pure function of
// (graph, Spec)); and a replica death mid-batch re-drives only that
// replica's sub-batch on the survivors — the chaos suite gates that a
// kill with a batch in flight yields zero failed client requests.
//
// Determinism is what makes the fleet transparent. A best-of-K ensemble
// fans out across replicas as disjoint seed sub-ranges
// (Spec.SeedOffset/SeedCount — sub-range candidate seeds stay absolute,
// so candidate c runs identically wherever it runs), each replica sweeps
// its slice against its own shared scaling, and the router reduces the
// sub-range winners in offset order under the same
// strict-improvement/smallest-seed rule the library uses internally. The
// reduced winner — mates, winner seed, provenance, matched weight for
// the auction — is bit-identical to one process running the full sweep,
// gated under the race detector in CI for the cardinality heuristics and
// the auction alike.
//
// The quality guarantees themselves are enforced by the statistical test
// suite (quality_test.go): OneSided ≥ (1−1/e)·sprank and TwoSided ≥
// 0.86·sprank in the mean over seed sweeps, and exactness of Karp–Sipser
// on degree-≤2 families.
package bipartite
