package bipartite

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tickB advances one sampling period at the current load and steps the
// batcher's watchdog — fakeLoad.tick for Batcher.
func (f *fakeLoad) tickB(b *Batcher) {
	f.mu.Lock()
	f.now = f.now.Add(f.iv)
	f.cpu += time.Duration(f.busy * float64(f.cores) * float64(f.iv))
	f.mu.Unlock()
	b.wd.Tick()
}

// heatB ticks until the batcher's watchdog reports the wanted level.
func (f *fakeLoad) heatB(t *testing.T, b *Batcher, busy float64, want ShedLevel) {
	t.Helper()
	f.setBusy(busy)
	for i := 0; i < 4; i++ {
		f.tickB(b)
		if b.Health().Level == want {
			return
		}
	}
	t.Fatalf("level %v after heating at busy=%v, want %v", b.Health().Level, busy, want)
}

// TestProtectBatcherShedUnderMutationLoad gates the watchdog wiring for
// MatchBatch-without-Server callers: a Batcher serving mixed-priority
// batches against a DynSession's evolving snapshots must, under injected
// overload, shed low/normal priority in place with the typed ShedError
// while still serving high priority (degraded) — and recover to full
// undegraded service once the load clears. The mutation workload churns
// snapshots (DropGraph on each stale one) concurrently with serving, so
// under -race this also gates the snapshot-swap pattern itself.
func TestProtectBatcherShedUnderMutationLoad(t *testing.T) {
	g := RandomER(200, 200, 3, 1)
	sess, err := g.NewDynSession(Spec{Algorithm: AlgTwoSided, Refine: RefineExact}, &Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	f := newFakeLoad()
	b := NewBatcher(&Options{ScalingIterations: 2, Workers: 1},
		BatcherConfig{Watchdog: f.config(0.5)})
	defer b.Close()

	// The mutation workload: a background goroutine folds batches into the
	// session and republishes the snapshot, evicting the stale one from the
	// batcher's scale cache — the registry pattern serving layers use.
	var snap atomic.Pointer[Graph]
	snap.Store(sess.Snapshot())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		row, col := 0, 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			old := snap.Load()
			if _, err := sess.Apply([][2]int{{row % sess.Rows(), col % sess.Cols()}},
				[][2]int{{(row + 7) % sess.Rows(), (col + 3) % sess.Cols()}}); err != nil {
				t.Error(err)
				return
			}
			row += 13
			col += 11
			snap.Store(sess.Snapshot())
			b.DropGraph(old)
		}
	}()

	batch := func(prio Priority) []Response {
		cur := snap.Load()
		return b.MatchBatch([]Request{
			{Graph: cur, Spec: Spec{Seed: 1, Refine: RefineExact}, Priority: prio},
			{Graph: cur, Spec: Spec{Seed: 2}, Priority: prio},
		})
	}

	// Nominal: everything served, nothing degraded.
	for _, r := range batch(PriorityLow) {
		if r.Err != nil || r.Degraded != "" {
			t.Fatalf("nominal: err=%v degraded=%q, want full service", r.Err, r.Degraded)
		}
	}

	// Overload to Critical: low and normal are shed in place with the
	// typed error; high is served but degraded (exact refine dropped).
	f.heatB(t, b, 0.7, ShedCritical)
	for _, prio := range []Priority{PriorityLow, PriorityNormal} {
		for _, r := range batch(prio) {
			if !errors.Is(r.Err, ErrShed) {
				t.Fatalf("priority %v under critical: err=%v, want ErrShed", prio, r.Err)
			}
			var shed *ShedError
			if !errors.As(r.Err, &shed) || shed.Level != ShedCritical || shed.RetryAfter <= 0 {
				t.Fatalf("priority %v shed error %v, want ShedError{Critical, >0}", prio, r.Err)
			}
		}
	}
	high := batch(PriorityHigh)
	for _, r := range high {
		if r.Err != nil {
			t.Fatalf("high priority under critical: %v, want served", r.Err)
		}
	}
	if high[0].Degraded == "" || high[0].Refined {
		t.Fatalf("critical high-priority exact request: degraded=%q refined=%v, want degraded heuristic",
			high[0].Degraded, high[0].Refined)
	}

	// Recovery: load clears, level decays, full service resumes.
	f.setBusy(0.0)
	for i := 0; i < 10 && b.Health().Level != ShedNominal; i++ {
		f.tickB(b)
	}
	if lvl := b.Health().Level; lvl != ShedNominal {
		t.Fatalf("level %v after cooldown, want nominal", lvl)
	}
	for _, r := range batch(PriorityLow) {
		if r.Err != nil || r.Degraded != "" {
			t.Fatalf("post-recovery: err=%v degraded=%q, want full service", r.Err, r.Degraded)
		}
	}

	close(stop)
	wg.Wait()

	st := b.Stats()
	if st.Shed < 4 || st.Served == 0 || st.Degraded == 0 {
		t.Fatalf("stats %+v, want shed>=4, served>0, degraded>0", st)
	}

	// The maintained matching stayed coherent under the concurrent churn.
	if err := sess.Snapshot().ValidateMatching(sess.Matching()); err != nil {
		t.Fatal(err)
	}
	if want := sess.Snapshot().Sprank(); sess.Size() != want {
		t.Fatalf("maintained size %d, want sprank %d", sess.Size(), want)
	}
}
