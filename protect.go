package bipartite

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/watchdog"
)

// This file is the Server's self-protection layer: priority admission,
// per-client rate limits, queue-aware deadline rejection, and graceful
// quality degradation, all driven by the internal watchdog's shedding
// level. The design principle is that the paper's quality guarantees form
// a degradation *ladder* no generic service has: under pressure the
// engine can drop the exact refinement stage and still return a matching
// with a provable bound (OneSided ≥ (1−1/e)·sprank, TwoSided ≈
// 0.866·sprank), so load shedding trades optimality before it ever
// refuses work — and refuses doomed or low-priority work before it
// queues.

// Priority ranks a request for admission under load: when the watchdog
// reports the process hot, lower priorities are shed first. The zero
// value is PriorityNormal, so existing callers are unaffected.
type Priority int

const (
	// PriorityLow marks work to shed first (bulk sweeps, prefetch,
	// best-effort analytics). Rejected at ShedShedding and above.
	PriorityLow Priority = -1
	// PriorityNormal is the default. Rejected at ShedCritical.
	PriorityNormal Priority = 0
	// PriorityHigh marks work that is never shed by the watchdog — it
	// still fails with ErrOverloaded when the bounded queue is full.
	PriorityHigh Priority = 1
)

// String returns the wire name of the priority.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityHigh:
		return "high"
	case PriorityNormal:
		return "normal"
	default:
		return "unknown"
	}
}

// ParsePriority converts a wire name back into a Priority. The empty
// string means PriorityNormal.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "normal", "":
		return PriorityNormal, nil
	case "low":
		return PriorityLow, nil
	case "high":
		return PriorityHigh, nil
	default:
		return 0, fmt.Errorf("bipartite: unknown priority %q", s)
	}
}

// ShedLevel is the watchdog's shedding ladder as the public API exposes
// it; see WatchdogConfig for how levels are entered and left.
type ShedLevel int

const (
	// ShedNominal is full service.
	ShedNominal ShedLevel = ShedLevel(watchdog.Nominal)
	// ShedDegraded serves every admitted request with a downgraded Spec:
	// refinement dropped, ensembles capped at 2 — the heuristic quality
	// bounds still hold, the sprank guarantee is given up.
	ShedDegraded ShedLevel = ShedLevel(watchdog.Degraded)
	// ShedShedding additionally rejects PriorityLow requests and caps
	// ensembles at 1.
	ShedShedding ShedLevel = ShedLevel(watchdog.Shedding)
	// ShedCritical rejects everything below PriorityHigh.
	ShedCritical ShedLevel = ShedLevel(watchdog.Critical)
)

// String returns the wire name of the level.
func (l ShedLevel) String() string { return watchdog.Level(l).String() }

// ErrShed reports a request rejected at admission because the watchdog
// found the process too hot for the request's priority. The concrete
// error is a *ShedError carrying the level and a Retry-After hint.
var ErrShed = errors.New("bipartite: request shed (server hot)")

// ErrWouldMiss reports a request rejected at admission because its
// context deadline cannot be met: the remaining budget is smaller than
// the estimated queue wait plus the estimated service time, so running it
// would burn kernel work on an answer the caller has already abandoned.
// The concrete error is a *WouldMissError.
var ErrWouldMiss = errors.New("bipartite: deadline would be missed (queue wait exceeds remaining budget)")

// ErrRateLimited reports a request rejected by the per-client token
// bucket. The concrete error is a *RateLimitError.
var ErrRateLimited = errors.New("bipartite: client rate limit exceeded")

// ShedError is the concrete ErrShed: which level shed the request and how
// long a caller should wait before retrying (one watchdog settle window —
// retrying sooner is guaranteed to find the server still hot).
type ShedError struct {
	Level      ShedLevel
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("bipartite: request shed at level %s (retry after %v)", e.Level, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrShed) work.
func (e *ShedError) Unwrap() error { return ErrShed }

// WouldMissError is the concrete ErrWouldMiss: the estimated total time
// to an answer (queue wait + service time), the remaining context budget
// it exceeds, and the retry hint (the estimated queue wait — by then the
// backlog in front of the caller has drained).
type WouldMissError struct {
	Estimated  time.Duration
	Remaining  time.Duration
	RetryAfter time.Duration
}

func (e *WouldMissError) Error() string {
	return fmt.Sprintf("bipartite: deadline would be missed: estimated %v exceeds remaining %v", e.Estimated, e.Remaining)
}

// Unwrap makes errors.Is(err, ErrWouldMiss) work.
func (e *WouldMissError) Unwrap() error { return ErrWouldMiss }

// RateLimitError is the concrete ErrRateLimited: which client exceeded
// its bucket and when one token will have accrued.
type RateLimitError struct {
	Client     string
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("bipartite: client %q rate limited (retry after %v)", e.Client, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrRateLimited) work.
func (e *RateLimitError) Unwrap() error { return ErrRateLimited }

// WatchdogConfig enables a Server's self-protection watchdog: a sampler
// of the process's own CPU and RSS whose shedding level drives priority
// admission and Spec degradation. Protection is off unless at least one
// limit is set (Enabled).
//
// Utilization is max(cpu/CPULimit, rss/RSSLimit); the level enters
// Degraded at 100% of a limit, Shedding at 115%, Critical at 130%, and
// decays one step per Settle consecutive samples a hysteresis margin
// below the entry threshold — so one calm sample between two spikes never
// bounces the service back to full price.
type WatchdogConfig struct {
	// CPULimit is the tolerated CPU use as a fraction of total capacity
	// (1.0 = all cores busy). 0 disables the CPU dimension.
	CPULimit float64
	// RSSLimit is the tolerated resident set size in bytes. 0 disables
	// the RSS dimension.
	RSSLimit uint64
	// Interval is the sampling period; <= 0 means 1s.
	Interval time.Duration
	// Settle is how many consecutive calm samples one level decay
	// requires; <= 0 means 3. Interval×Settle is the Retry-After hint
	// shed responses carry.
	Settle int

	// ReadCPU, ReadRSS and Now are test seams: fault-injection suites
	// inject fake readers and a fake clock to replay arbitrary load
	// histories deterministically. nil means the real /proc readers and
	// time.Now.
	ReadCPU func() (time.Duration, error)
	ReadRSS func() (uint64, error)
	Now     func() time.Time
}

// Enabled reports whether any limit is configured.
func (c WatchdogConfig) Enabled() bool { return c.CPULimit > 0 || c.RSSLimit > 0 }

// AutoCPULimit derives a WatchdogConfig.CPULimit from the environment the
// process actually runs in: when a cgroup v2 CPU quota throttles the
// process (containers, systemd CPUQuota= slices), the limit tracks that
// quota instead of the machine's core count — so the shedding ladder
// engages as the process approaches its real throttle point rather than a
// capacity it can never use. headroom is the fraction of the budget to
// tolerate before degrading (out-of-range values fall back to the 0.85
// serving default). Without a quota it returns headroom itself (the
// full-machine limit); cmd/matchserve calls this when -cpulimit is left
// at its automatic default.
func AutoCPULimit(headroom float64) float64 { return watchdog.AutoCPULimit(headroom) }

// build converts the public config into the internal watchdog's.
func (c WatchdogConfig) build() *watchdog.Watchdog {
	return watchdog.New(watchdog.Config{
		CPULimit: c.CPULimit,
		RSSLimit: c.RSSLimit,
		Interval: c.Interval,
		Settle:   c.Settle,
		ReadCPU:  c.ReadCPU,
		ReadRSS:  c.ReadRSS,
		Now:      c.Now,
	})
}

// ServerHealth is a snapshot of a Server's watchdog state; zero-valued
// when protection is disabled.
type ServerHealth struct {
	// Level is the current shedding level.
	Level ShedLevel
	// CPU is the latest CPU sample as a fraction of total capacity.
	CPU float64
	// RSSBytes is the latest resident set size.
	RSSBytes uint64
	// Utilization is the shedding score the level thresholds apply to:
	// max(cpu/CPULimit, rss/RSSLimit).
	Utilization float64
}

// degradeSpec downgrades a Spec for the given shedding level and returns
// the marker string stamped into the response's Degraded provenance. The
// ladder gives up guarantees most-expensive-first while every surviving
// answer keeps a provable bound:
//
//	Nominal  — full Spec; refined results reach sprank.
//	Degraded — Refine dropped (heuristic bound only), Ensemble capped
//	           at 2 (one scaling, at most two sampling kernels).
//	Shedding — additionally Ensemble capped at 1: one heuristic run,
//	           still carrying the paper's one-/two-sided bound.
//	Critical — as Shedding (admission has already shed everything below
//	           PriorityHigh).
//
// The empty marker means the Spec ran exactly as requested.
func degradeSpec(s Spec, lvl watchdog.Level) (Spec, string) {
	if lvl < watchdog.Degraded {
		return s, ""
	}
	var marks []string
	if s.Refine != RefineNone {
		marks = append(marks, "refine:"+s.Refine.String()+"->none")
		s.Refine = RefineNone
	}
	capK := 2
	if lvl >= watchdog.Shedding {
		capK = 1
	}
	if s.SeedCount > 0 {
		// A seed sub-range (cluster fan-out slice) keeps Ensemble as the
		// full interval's width for validation; the work to cap is the
		// slice itself. Shrinking the count keeps the sub-range valid
		// (offset+count only decreases) — the router's reduce still works,
		// it just sees fewer candidates from this replica, observable via
		// the degraded marker.
		if s.SeedCount > capK {
			marks = append(marks, "seed_count:"+strconv.Itoa(s.SeedCount)+"->"+strconv.Itoa(capK))
			s.SeedCount = capK
		}
	} else if s.Ensemble > capK {
		marks = append(marks, "best_of:"+strconv.Itoa(s.Ensemble)+"->"+strconv.Itoa(capK))
		s.Ensemble = capK
	}
	if s.Target != 0 && s.Ensemble <= 1 {
		// Target only shapes ensembles; a capped-to-single run ignores it,
		// so record that the quality target is no longer being chased.
		marks = append(marks, "target:dropped")
		s.Target = 0
	}
	return s, strings.Join(marks, ",")
}

// svcClassCap bounds the service-time tracker's keyed EWMA map, the same
// containment discipline as the engine's scaling cache: a stream of
// never-repeating graphs cannot grow it without bound.
const svcClassCap = 1024

// svcEWMAAlpha is the smoothing factor of the service-time estimates:
// 0.2 reaches ~90% of a level shift within ten observations while riding
// out single-request noise.
const svcEWMAAlpha = 0.2

// svcKey classifies requests whose service times are comparable: same
// graph, same algorithm and refinement family, same ensemble width. The
// Seed and Target fields are deliberately excluded — they move the cost
// far less than the key fields do.
type svcKey struct {
	g   *Graph
	alg Algorithm
	ref Refinement
	k   int
}

// svcStats estimates per-class service times with exponentially weighted
// moving averages, plus one global mean that seeds estimates for classes
// never seen before. It backs the would-miss admission check: reject now,
// with a Retry-After, rather than queue work whose deadline the backlog
// has already doomed.
type svcStats struct {
	mu     sync.Mutex
	tick   uint64
	keyed  map[svcKey]*svcEWMA
	global time.Duration // EWMA over every request; 0 until first record
}

type svcEWMA struct {
	mean time.Duration
	last uint64 // LRU recency stamp
}

func newSvcStats() *svcStats {
	return &svcStats{keyed: make(map[svcKey]*svcEWMA)}
}

// classOf collapses a request's spec into its service-time class.
func classOf(g *Graph, spec Spec) svcKey {
	k := spec.Ensemble
	if k < 1 {
		k = 1
	}
	return svcKey{g: g, alg: spec.Algorithm, ref: spec.Refine, k: k}
}

// record folds one observed service time into the class and global EWMAs.
func (s *svcStats) record(g *Graph, spec Spec, d time.Duration) {
	key := classOf(g, spec)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	e := s.keyed[key]
	if e == nil {
		if len(s.keyed) >= svcClassCap {
			var victim svcKey
			oldest := ^uint64(0)
			for k, v := range s.keyed {
				if v.last < oldest {
					oldest, victim = v.last, k
				}
			}
			delete(s.keyed, victim)
		}
		e = &svcEWMA{mean: d}
		s.keyed[key] = e
	} else {
		e.mean = ewma(e.mean, d)
	}
	e.last = s.tick
	if s.global == 0 {
		s.global = d
	} else {
		s.global = ewma(s.global, d)
	}
}

func ewma(prev, obs time.Duration) time.Duration {
	return time.Duration(svcEWMAAlpha*float64(obs) + (1-svcEWMAAlpha)*float64(prev))
}

// estimate returns the expected service time of a request: the class EWMA
// when the class has history, the global mean otherwise. ok is false only
// before any request has completed at all — with no data there is nothing
// defensible to reject on.
func (s *svcStats) estimate(g *Graph, spec Spec) (time.Duration, bool) {
	key := classOf(g, spec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.keyed[key]; e != nil {
		e.last = s.tick
		return e.mean, true
	}
	if s.global > 0 {
		return s.global, true
	}
	return 0, false
}

// globalMean returns the all-requests EWMA (0 before any completion) —
// the per-slot drain rate estimate behind the queue-wait term.
func (s *svcStats) globalMean() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.global
}

// dropGraph forgets every class of graph g (the graph registry evicted
// it; its estimates must not pin the map).
func (s *svcStats) dropGraph(g *Graph) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.keyed {
		if k.g == g {
			delete(s.keyed, k)
		}
	}
}
