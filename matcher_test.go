package bipartite

import (
	"math"
	"testing"
)

func cmpMates(t *testing.T, what string, got, want *Matching) {
	t.Helper()
	if got.Size != want.Size {
		t.Fatalf("%s: size %d want %d", what, got.Size, want.Size)
	}
	if len(got.RowMate) != len(want.RowMate) || len(got.ColMate) != len(want.ColMate) {
		t.Fatalf("%s: shape (%d,%d) want (%d,%d)", what,
			len(got.RowMate), len(got.ColMate), len(want.RowMate), len(want.ColMate))
	}
	for i := range want.RowMate {
		if got.RowMate[i] != want.RowMate[i] {
			t.Fatalf("%s: RowMate[%d] = %d want %d", what, i, got.RowMate[i], want.RowMate[i])
		}
	}
	for j := range want.ColMate {
		if got.ColMate[j] != want.ColMate[j] {
			t.Fatalf("%s: ColMate[%d] = %d want %d", what, j, got.ColMate[j], want.ColMate[j])
		}
	}
}

func cmpScalings(t *testing.T, what string, got, want *Scaling) {
	t.Helper()
	if got.Iterations != want.Iterations ||
		math.Float64bits(got.Error) != math.Float64bits(want.Error) {
		t.Fatalf("%s: (iters=%d err=%v) want (iters=%d err=%v)",
			what, got.Iterations, got.Error, want.Iterations, want.Error)
	}
	for k := range want.DR {
		if math.Float64bits(got.DR[k]) != math.Float64bits(want.DR[k]) {
			t.Fatalf("%s: DR[%d] = %v want %v", what, k, got.DR[k], want.DR[k])
		}
	}
	for k := range want.DC {
		if math.Float64bits(got.DC[k]) != math.Float64bits(want.DC[k]) {
			t.Fatalf("%s: DC[%d] = %v want %v", what, k, got.DC[k], want.DC[k])
		}
	}
}

// TestMatcherBitIdenticalToOneShot is the session-vs-one-shot oracle:
// repeated TwoSided/OneSided/Scale calls on one Matcher — interleaved
// seeds, repeated seeds, several option sets — reproduce the one-shot API.
// At one worker the comparison is the full matching bit for bit; at
// parallel widths the per-edge pairing of the Karp–Sipser kernel is
// scheduling-dependent (in the one-shot path too — CAS claim order), so
// the pinned quantities are the size and the scaling vectors, which stay
// bitwise (the only cross-worker reduction is an exact max).
func TestMatcherBitIdenticalToOneShot(t *testing.T) {
	graphs := map[string]*Graph{
		"er": RandomER(1500, 1500, 4, 21),
		"fi": FullyIndecomposable(1000, 2, 9),
	}
	optSets := []Options{
		{ScalingIterations: 5, Workers: 1},
		{ScalingIterations: 5, Workers: 4},
		{ScalingIterations: 0, Workers: 2}, // uniform sampling path
		{ScalingIterations: -1, UseRuiz: true, Workers: 2},
		{ScalingIterations: 5, Workers: 1, SkewAware: true},
	}
	for name, g := range graphs {
		for oi, base := range optSets {
			m := g.NewMatcher(&base)
			for _, seed := range []uint64{1, 7, 7, 42, 1} {
				opt := base
				opt.Seed = seed
				want, err := g.TwoSidedMatch(&opt)
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.TwoSided(seed)
				if err != nil {
					t.Fatal(err)
				}
				if base.Workers == 1 {
					cmpMates(t, name+" two-sided", got.Matching, want.Matching)
				} else if got.Matching.Size != want.Matching.Size {
					t.Fatalf("%s opt %d seed %d: two-sided size %d want %d",
						name, oi, seed, got.Matching.Size, want.Matching.Size)
				}
				cmpScalings(t, name+" scaling", got.Scaling, want.Scaling)
				if err := g.ValidateMatching(got.Matching); err != nil {
					t.Fatalf("%s opt %d seed %d: %v", name, oi, seed, err)
				}

				// OneSided's winners are scheduling-dependent above one
				// worker too; its size is pinned by the deterministic
				// chosen-column set.
				gotOne, err := m.OneSided(seed)
				if err != nil {
					t.Fatal(err)
				}
				wantOne, err := g.OneSidedMatch(&opt)
				if err != nil {
					t.Fatal(err)
				}
				if base.Workers == 1 {
					cmpMates(t, name+" one-sided", gotOne.Matching, wantOne.Matching)
				} else if gotOne.Matching.Size != wantOne.Matching.Size {
					t.Fatalf("%s opt %d seed %d: one-sided size %d want %d",
						name, oi, seed, gotOne.Matching.Size, wantOne.Matching.Size)
				}
			}
		}
	}
}

// TestMatcherSeedZeroDefaults: seed 0 on a session call means
// Options.Seed, exactly like the one-shot API.
func TestMatcherSeedZeroDefaults(t *testing.T) {
	g := RandomER(800, 800, 4, 5)
	opt := &Options{ScalingIterations: 3, Seed: 99, Workers: 1}
	want, err := g.TwoSidedMatch(opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.NewMatcher(opt).TwoSided(0)
	if err != nil {
		t.Fatal(err)
	}
	cmpMates(t, "seed-0 default", got.Matching, want.Matching)
}

// TestMatcherResetReuse cycles one Matcher through several graphs — equal
// and different shapes — and checks each binding behaves like a fresh
// session.
func TestMatcherResetReuse(t *testing.T) {
	gs := []*Graph{
		RandomER(1000, 1000, 4, 1),
		RandomER(1000, 1000, 4, 2), // same shape: buffers reused as-is
		RandomER(1800, 1600, 3, 3), // bigger: regrow
		RandomER(300, 400, 5, 4),   // smaller: reslice
	}
	// Workers: 1 keeps the comparison bitwise (the parallel kernel's
	// pairing is scheduling-dependent; see TestMatcherBitIdenticalToOneShot).
	opt := &Options{ScalingIterations: 5, Workers: 1}
	m := gs[0].NewMatcher(opt)
	for round := 0; round < 2; round++ { // second round re-visits warm shapes
		for _, g := range gs {
			m.Reset(g)
			if m.Graph() != g {
				t.Fatal("Graph() does not track Reset")
			}
			want, err := g.TwoSidedMatch(opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.TwoSided(0)
			if err != nil {
				t.Fatal(err)
			}
			cmpMates(t, "reset two-sided", got.Matching, want.Matching)
			if err := g.ValidateMatching(got.Matching); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestMatcherScaleCachedAcrossCalls: the scaling is computed once per
// binding and every call reuses it — repeated Scale calls return the same
// view, and a KarpSipser-only session never scales at all.
func TestMatcherScaleCachedAcrossCalls(t *testing.T) {
	g := RandomER(600, 600, 4, 8)
	m := g.NewMatcher(&Options{ScalingIterations: 5})
	sc1, err := m.Scale()
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := m.Scale()
	if err != nil {
		t.Fatal(err)
	}
	if sc1 != sc2 {
		t.Fatal("Scale() recomputed instead of serving the cache")
	}
	want, err := g.Scale(&Options{ScalingIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	cmpScalings(t, "cached scaling", sc1, want)

	// Karp–Sipser variants on a session: deterministic and valid.
	mt1, st1 := m.KarpSipser(3)
	if err := g.ValidateMatching(mt1); err != nil {
		t.Fatal(err)
	}
	wantKS, wantSt := g.KarpSipser(3)
	if mt1.Size != wantKS.Size || st1 != wantSt {
		t.Fatalf("session KS (%d, %+v) want (%d, %+v)", mt1.Size, st1, wantKS.Size, wantSt)
	}
	mtp := m.KarpSipserParallel(3)
	if err := g.ValidateMatching(mtp); err != nil {
		t.Fatal(err)
	}
}

// TestMatcherSteadyStateAllocs is the ISSUE's allocation gate: reused
// session calls stay within two allocations per call. At one worker the
// whole pipeline runs inline over resident workspaces, so the budget is
// actually zero; two is the contract.
func TestMatcherSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under -race")
	}
	g := RandomER(2000, 2000, 4, 13)
	pool := NewPool(1)
	defer pool.Close()
	m := g.NewMatcher(&Options{ScalingIterations: 5, Workers: 1, Pool: pool})
	if _, err := m.TwoSided(1); err != nil { // warm: scaling + first growth
		t.Fatal(err)
	}

	seed := uint64(0)
	gate := func(name string, f func()) {
		t.Helper()
		if allocs := testing.AllocsPerRun(20, f); allocs > 2 {
			t.Errorf("%s: %.1f allocs per reused call, want <= 2", name, allocs)
		}
	}
	gate("TwoSided", func() {
		seed++
		if _, err := m.TwoSided(seed); err != nil {
			t.Fatal(err)
		}
	})
	gate("OneSided", func() {
		seed++
		if _, err := m.OneSided(seed); err != nil {
			t.Fatal(err)
		}
	})
	m.KarpSipser(1) // warm the sequential workspace
	gate("KarpSipser", func() {
		seed++
		m.KarpSipser(seed)
	})
	m.KarpSipserParallel(1) // warm the approx session
	gate("KarpSipserParallel", func() {
		seed++
		m.KarpSipserParallel(seed)
	})

	// Refining Specs ride the session's refinement workspace (refineWs), so
	// repeated jump-start runs — including the ensemble+refine serving
	// pattern — meet the same budget once the workspace is warm.
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"RefineExact", Spec{Refine: RefineExact}},
		{"RefineGraft", Spec{Refine: RefineGraft}},
		{"EnsembleRefineGraft", Spec{Ensemble: 4, Refine: RefineGraft, Sequential: true}},
	} {
		spec := tc.spec
		spec.Seed = 1
		if _, err := m.Run(spec); err != nil { // warm the refinement workspace
			t.Fatal(err)
		}
		gate(tc.name, func() {
			seed++
			spec.Seed = seed
			if _, err := m.Run(spec); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMatcherSteadyStateAllocsParallel gates the parallel path too: with
// the recycled loop runtime and the fused sampling region, a
// pool-dispatched session call meets the same two-allocation budget as
// the sequential path.
func TestMatcherSteadyStateAllocsParallel(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under -race")
	}
	g := RandomER(2000, 2000, 4, 13)
	pool := NewPool(4)
	defer pool.Close()
	m := g.NewMatcher(&Options{ScalingIterations: 5, Workers: 4, Pool: pool})
	if _, err := m.TwoSided(1); err != nil {
		t.Fatal(err)
	}
	seed := uint64(0)
	if allocs := testing.AllocsPerRun(20, func() {
		seed++
		if _, err := m.TwoSided(seed); err != nil {
			t.Fatal(err)
		}
	}); allocs > 2 {
		t.Errorf("parallel TwoSided: %.1f allocs per reused call, want <= 2", allocs)
	}
}
